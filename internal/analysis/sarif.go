package analysis

import (
	"encoding/json"
)

// Minimal SARIF 2.1.0 document model: one run, one driver, one result
// per finding. Only the fields CI viewers actually consume are emitted.
type sarifDoc struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
	EndLine   int `json:"endLine,omitempty"`
}

// SARIF renders findings as a SARIF 2.1.0 log (the interchange format CI
// annotation surfaces ingest), declaring every analyzer as a rule even
// when it produced no results so the artifact documents the whole suite.
func SARIF(findings []Finding, analyzers []*Analyzer) ([]byte, error) {
	driver := sarifDriver{Name: "vetabr"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		level := "warning"
		if f.Severity != Warning {
			level = "note"
		}
		region := sarifRegion{StartLine: f.Pos.Line}
		if f.End.IsValid() && f.End.Line >= f.Pos.Line {
			region.EndLine = f.End.Line
		}
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   level,
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.Pos.Filename},
					Region:           region,
				},
			}},
		})
	}
	doc := sarifDoc{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	return json.MarshalIndent(doc, "", "  ")
}
