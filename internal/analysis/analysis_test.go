package analysis

import (
	"strings"
	"testing"
)

// runOne analyzes a single synthetic file with one analyzer.
func runOne(t *testing.T, pkgPath, src string, az *Analyzer) []Finding {
	t.Helper()
	findings, err := RunSource(pkgPath, map[string]string{pkgPath + "/fix.go": src}, []*Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// wantRules asserts the findings carry exactly the expected rules in order.
func wantRules(t *testing.T, findings []Finding, rules ...string) {
	t.Helper()
	if len(findings) != len(rules) {
		t.Fatalf("got %d findings %v, want %d (%v)", len(findings), findings, len(rules), rules)
	}
	for i, r := range rules {
		if findings[i].Rule != r {
			t.Errorf("finding %d rule = %q, want %q (%s)", i, findings[i].Rule, r, findings[i])
		}
	}
}

func TestSimClock(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		src  string
		want []string
	}{
		{
			// Randomness discipline moved to globalrand; simclock keeps the
			// wall-clock reads only.
			name: "wall clock in sim package",
			pkg:  "simfix",
			src: `package simfix

import (
	"time"
)

func bad() time.Time {
	time.Sleep(time.Second)
	return time.Now()
}
`,
			want: []string{"simclock", "simclock"},
		},
		{
			name: "seeded rand and duration arithmetic are fine",
			pkg:  "simfix",
			src: `package simfix

import (
	"math/rand"
	"time"
)

func good(seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	return time.Duration(rng.Intn(10)) * time.Second
}
`,
			want: nil,
		},
		{
			name: "non-sim package is out of scope",
			pkg:  "other",
			src: `package other

import "time"

func allowed() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name: "suppressed with reason",
			pkg:  "simfix",
			src: `package simfix

import "time"

func pinned() time.Time {
	//lint:ignore simclock startup timestamp only labels the log file name
	return time.Now()
}
`,
			want: nil,
		},
		{
			name: "renamed import still caught",
			pkg:  "simfix",
			src: `package simfix

import clock "time"

func sneaky() clock.Time { return clock.Now() }
`,
			want: []string{"simclock"},
		},
	}
	az := NewSimClock("simfix")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRules(t, runOne(t, tc.pkg, tc.src, az), tc.want...)
		})
	}
}

// TestSimClockRunpool pins the fan-out layer's membership in the sim-
// package set: goroutines are runpool's whole point and pass freely, but
// a wall-clock read smuggled into a job function — the classic way to
// break byte-identical parallel replay — is flagged like in any other
// simulation package.
func TestSimClockRunpool(t *testing.T) {
	az := NewSimClock(SimPackagePrefixes...)
	const pkg = "demuxabr/internal/runpool"
	t.Run("goroutines allowed, wall clock banned in a job", func(t *testing.T) {
		findings := runOne(t, pkg, `package runpool

import (
	"sync"
	"time"
)

func fanOut(n int, job func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			start := time.Now() // smuggled wall clock inside a job
			_ = start
			job(0)
		}()
	}
	wg.Wait()
}
`, az)
		wantRules(t, findings, "simclock")
	})
	t.Run("pure fan-out is clean", func(t *testing.T) {
		findings := runOne(t, pkg, `package runpool

import "sync"

func fanOut(n int, job func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			job(i)
		}()
	}
	wg.Wait()
}
`, az)
		wantRules(t, findings)
	})
}

func TestMapOrder(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "append without sort",
			src: `package fix

func bad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
			want: []string{"maporder"},
		},
		{
			name: "append with subsequent sort",
			src: `package fix

import "sort"

func good(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`,
			want: nil,
		},
		{
			name: "slices.Sort also counts",
			src: `package fix

import "slices"

func good(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
`,
			want: nil,
		},
		{
			name: "append to loop-local slice",
			src: `package fix

func local(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}
`,
			want: nil,
		},
		{
			name: "printing inside a map range",
			src: `package fix

import "fmt"

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`,
			want: []string{"maporder"},
		},
		{
			name: "range over slice is fine",
			src: `package fix

import "fmt"

func goodPrint(s []string) {
	for _, v := range s {
		fmt.Println(v)
	}
}
`,
			want: nil,
		},
		{
			// The HLSManifest.NumChunks bug: return the segment count of
			// whichever track the runtime happens to iterate first.
			name: "unconditional return of a map entry",
			src: `package fix

func numChunks(m map[string][]string) int {
	for _, segs := range m {
		return len(segs)
	}
	return 0
}
`,
			want: []string{"maporder"},
		},
		{
			name: "unconditional return behind plain statements",
			src: `package fix

func first(m map[string]int) int {
	for k, v := range m {
		_ = k
		n := v * 2
		return n + v
	}
	return 0
}
`,
			want: []string{"maporder"},
		},
		{
			name: "conditional return is a legitimate search",
			src: `package fix

func find(m map[string]int, want int) string {
	for k, v := range m {
		if v == want {
			return k
		}
	}
	return ""
}
`,
			want: nil,
		},
		{
			name: "return independent of loop variables",
			src: `package fix

func nonEmpty(m map[string]int) bool {
	for range m {
		return true
	}
	return false
}
`,
			want: nil,
		},
		{
			name: "order-insensitive reduction is fine",
			src: `package fix

func minLen(m map[string][]string) int {
	n := -1
	for _, segs := range m {
		if n < 0 || len(segs) < n {
			n = len(segs)
		}
	}
	return n
}
`,
			want: nil,
		},
		{
			name: "suppressed with reason",
			src: `package fix

func anyOne(m map[string]int) []string {
	var out []string
	//lint:ignore maporder result is order-insensitive set membership
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
			want: nil,
		},
	}
	az := NewMapOrder()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRules(t, runOne(t, "fix", tc.src, az), tc.want...)
		})
	}
}

func TestFloatEq(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "equality and inequality between floats",
			src: `package fix

func bad(a, b float64) bool { return a == b || a != 0.0 }
`,
			want: []string{"floateq", "floateq"},
		},
		{
			name: "named float type",
			src: `package fix

type Kbps float32

func bad(a, b Kbps) bool { return a == b }
`,
			want: []string{"floateq"},
		},
		{
			name: "integers and ordering are fine",
			src: `package fix

func good(a, b int, x, y float64) bool { return a == b && x < y }
`,
			want: nil,
		},
		{
			name: "suppressed with reason",
			src: `package fix

func exact(a float64) bool {
	//lint:ignore floateq sentinel compares against the exact stored value
	return a == 1.5
}
`,
			want: nil,
		},
	}
	az := NewFloatEq()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRules(t, runOne(t, "fix", tc.src, az), tc.want...)
		})
	}
}

func TestUnits(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "bits plus bytes",
			src: `package fix

func bad(sizeBytes, sizeBits int64) int64 { return sizeBytes + sizeBits }
`,
			want: []string{"units"},
		},
		{
			name: "sec compared with ms",
			src: `package fix

func bad(durSec, durMs float64) bool { return durSec < durMs }
`,
			want: []string{"units"},
		},
		{
			name: "explicit conversion factor",
			src: `package fix

func good(sizeBytes, sizeBits int64) int64 { return sizeBytes*8 + sizeBits }
`,
			want: nil,
		},
		{
			name: "millisecond conversion factor",
			src: `package fix

func good(durSec, durMs float64) float64 { return durSec*1000 + durMs }
`,
			want: nil,
		},
		{
			name: "same unit both sides",
			src: `package fix

func good(totalBytes, chunkBytes int64) int64 { return totalBytes + chunkBytes }
`,
			want: nil,
		},
		{
			name: "conversion helper neutralizes",
			src: `package fix

func bytesToBits(b int64) int64 { return b * 8 }

func good(sizeBytes, sizeBits int64) int64 { return bytesToBits(sizeBytes) + sizeBits }
`,
			want: nil,
		},
		{
			name: "multiplication is a conversion",
			src: `package fix

func good(rateBits, durSec float64) float64 { return rateBits * durSec }
`,
			want: nil,
		},
		{
			name: "suppressed with reason",
			src: `package fix

func mixed(padBytes, frameBits int64) int64 {
	//lint:ignore units protocol field packs both counters into one word
	return padBytes + frameBits
}
`,
			want: nil,
		},
	}
	az := NewUnits()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRules(t, runOne(t, "fix", tc.src, az), tc.want...)
		})
	}
}

func TestSuppressionNeedsReason(t *testing.T) {
	src := `package fix

func bad(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}
`
	findings := runOne(t, "fix", src, NewFloatEq())
	wantRules(t, findings, "bad-suppression", "floateq")
}

func TestFindingString(t *testing.T) {
	src := `package fix

func bad(a, b float64) bool { return a == b }
`
	findings := runOne(t, "fix", src, NewFloatEq())
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	s := findings[0].String()
	if !strings.HasPrefix(s, "fix/fix.go:3: [floateq] ") {
		t.Errorf("String() = %q, want file:line: [rule] message shape", s)
	}
}
