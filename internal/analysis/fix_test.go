package analysis

import (
	"go/format"
	"go/token"
	"strings"
	"testing"
)

// mkPos builds a position for baseline tests.
func mkPos(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1, Offset: 1}
}

// applyAndRecheck runs analyzers over one synthetic package, applies
// every attached fix, asserts the output is gofmt-clean, re-analyzes it,
// and returns the fixed source and the re-run findings.
func applyAndRecheck(t *testing.T, pkgPath, src string, analyzers []*Analyzer) (string, []Finding) {
	t.Helper()
	name := pkgPath + "/fix.go"
	findings, err := RunSource(pkgPath, map[string]string{name: src}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	out, applied, err := ApplyFixes(findings, map[string][]byte{name: []byte(src)})
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatalf("no fixes attached; findings = %v", findings)
	}
	fixed, ok := out[name]
	if !ok {
		t.Fatalf("fix did not rewrite %s; rewrote %v", name, out)
	}
	formatted, err := format.Source(fixed)
	if err != nil {
		t.Fatalf("fixed source does not parse: %v\n%s", err, fixed)
	}
	if string(formatted) != string(fixed) {
		t.Errorf("fixed source is not gofmt-clean:\n%s", fixed)
	}
	after, err := RunSource(pkgPath, map[string]string{name: string(fixed)}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return string(fixed), after
}

// TestFixMapOrderSortInsert: the maporder append-without-sort fix inserts
// slices.Sort after the loop (and the slices import) and the analyzer
// then passes.
func TestFixMapOrderSortInsert(t *testing.T) {
	src := `package fix

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	fixed, after := applyAndRecheck(t, "fix", src, []*Analyzer{NewMapOrder()})
	if !strings.Contains(fixed, "slices.Sort(out)") || !strings.Contains(fixed, `"slices"`) {
		t.Errorf("fix missing sort or import:\n%s", fixed)
	}
	if len(after) != 0 {
		t.Errorf("analyzer still fires after fix: %v\n%s", after, fixed)
	}
}

// TestFixMapOrderExistingImports: the slices import lands inside an
// existing grouped import declaration.
func TestFixMapOrderExistingImports(t *testing.T) {
	src := `package fix

import (
	"fmt"
)

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	fmt.Println(len(out))
	return out
}
`
	fixed, after := applyAndRecheck(t, "fix", src, []*Analyzer{NewMapOrder()})
	if !strings.Contains(fixed, "\"fmt\"\n\t\"slices\"") {
		t.Errorf("slices import not merged into the group:\n%s", fixed)
	}
	if len(after) != 0 {
		t.Errorf("analyzer still fires after fix: %v\n%s", after, fixed)
	}
}

// TestFixMapOrderStructSliceHasNoFix: struct slices need a human-chosen
// sort key, so the finding carries no rewrite.
func TestFixMapOrderStructSliceHasNoFix(t *testing.T) {
	src := `package fix

type pair struct{ k string }

func pairs(m map[string]int) []pair {
	var out []pair
	for k := range m {
		out = append(out, pair{k})
	}
	return out
}
`
	findings, err := RunSource("fix", map[string]string{"fix/fix.go": src}, []*Analyzer{NewMapOrder()})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1", findings)
	}
	if len(findings[0].Fixes) != 0 {
		t.Errorf("struct-slice finding should carry no fix: %+v", findings[0].Fixes)
	}
}

// TestFixGlobalRandSeedSubstitution: the wall-clock seed becomes the
// constant 1 and the orphaned time import disappears.
func TestFixGlobalRandSeedSubstitution(t *testing.T) {
	src := `package netsim

import (
	"math/rand"
	"time"
)

func rng() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
`
	az := []*Analyzer{NewGlobalRand("demuxabr/internal/netsim")}
	fixed, after := applyAndRecheck(t, "demuxabr/internal/netsim", src, az)
	if !strings.Contains(fixed, "rand.NewSource(1)") {
		t.Errorf("seed not substituted:\n%s", fixed)
	}
	if strings.Contains(fixed, `"time"`) {
		t.Errorf("orphaned time import kept:\n%s", fixed)
	}
	if len(after) != 0 {
		t.Errorf("analyzer still fires after fix: %v\n%s", after, fixed)
	}
}

// TestApplyFixesRejectsOverlap: two rewrites of the same bytes refuse to
// guess.
func TestApplyFixesRejectsOverlap(t *testing.T) {
	src := "package fix\n"
	findings := []Finding{
		{Fixes: []TextEdit{{Filename: "fix.go", Start: 0, End: 7, NewText: "x"}}},
		{Fixes: []TextEdit{{Filename: "fix.go", Start: 5, End: 9, NewText: "y"}}},
	}
	if _, _, err := ApplyFixes(findings, map[string][]byte{"fix.go": []byte(src)}); err == nil {
		t.Error("overlapping fixes should error")
	}
}

// TestBaselineRoundTrip: format → parse → Take covers each finding
// exactly once and reports the leftover as stale.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Pos: mkPos("a.go", 3), Severity: Warning, Rule: "maporder", Message: "m1"},
		{Pos: mkPos("b.go", 9), Severity: Warning, Rule: "units", Message: "m2"},
	}
	b := ParseBaseline(FormatBaseline(findings))
	if !b.Take(findings[0]) || !b.Take(findings[1]) {
		t.Fatal("baseline should cover both findings")
	}
	if b.Take(findings[0]) {
		t.Error("second Take of the same finding should miss")
	}
	if len(b.Stale()) != 0 {
		t.Errorf("stale = %v, want none", b.Stale())
	}

	b = ParseBaseline(FormatBaseline(findings))
	if !b.Take(findings[0]) {
		t.Fatal("Take")
	}
	stale := b.Stale()
	if len(stale) != 1 || !strings.HasPrefix(stale[0], "b.go\tunits\t") {
		t.Errorf("stale = %v, want the unconsumed b.go entry", stale)
	}
}

// TestBaselineLineDrift: entries key by file/rule/message, not line, so
// findings that merely moved stay grandfathered.
func TestBaselineLineDrift(t *testing.T) {
	old := Finding{Pos: mkPos("a.go", 3), Severity: Warning, Rule: "maporder", Message: "m"}
	moved := Finding{Pos: mkPos("a.go", 42), Severity: Warning, Rule: "maporder", Message: "m"}
	b := ParseBaseline(FormatBaseline([]Finding{old}))
	if !b.Take(moved) {
		t.Error("line drift should not break baseline matching")
	}
}
