package analysis

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// unitClass is one heuristic unit family inferred from identifier names.
type unitClass int

const (
	unitNone unitClass = iota
	unitBits
	unitBytes
	unitSec
	unitMs
	unitMixed // operand converts between units itself; not comparable
)

// String names the class for messages.
func (u unitClass) String() string {
	switch u {
	case unitBits:
		return "bits"
	case unitBytes:
		return "bytes"
	case unitSec:
		return "seconds"
	case unitMs:
		return "milliseconds"
	}
	return "?"
}

// dimension groups classes that measure the same quantity.
func (u unitClass) dimension() int {
	switch u {
	case unitBits, unitBytes:
		return 1
	case unitSec, unitMs:
		return 2
	}
	return 0
}

// NewUnits builds the units analyzer: it heuristically flags +, - and
// comparisons whose operands' identifier names carry different units of
// the same dimension (bits vs bytes, seconds vs milliseconds) with no
// conversion constant in sight — the silent unit-mixing bug class that
// corrupts throughput and timing bookkeeping without crashing anything.
func NewUnits() *Analyzer {
	return &Analyzer{
		Name: "units",
		Doc:  "flag arithmetic mixing bits/bytes or sec/ms identifiers without a conversion",
		Run:  runUnits,
	}
}

// unitOps are the operators where mixed units are meaningless. Products
// and quotients are excluded: multiplying or dividing IS the conversion.
var unitOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func runUnits(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || !unitOps[bin.Op] {
				return true
			}
			left := classify(bin.X)
			right := classify(bin.Y)
			if left.dimension() != 0 && left.dimension() == right.dimension() && left != right {
				pass.Reportf(bin.OpPos, Warning,
					"%q mixes %s (left) with %s (right) without an explicit conversion constant", bin.Op, left, right)
				return false
			}
			return true
		})
	}
}

// conversionFactors are literals whose presence marks an operand as an
// explicit unit conversion (bits<->bytes, s<->ms, and kbps/Mbps scales).
var conversionFactors = map[string]bool{
	"8": true, "8.0": true, "1000": true, "1e3": true, "1_000": true,
	"1024": true, "8000": true, "1e6": true, "1_000_000": true,
	"1e9": true, "0.001": true, "0.008": true, "125": true,
}

// conversionCalls are method/function names that perform a unit
// conversion, neutralizing the operand they appear in.
var conversionCalls = map[string]bool{
	"Seconds": true, "Milliseconds": true, "Microseconds": true,
	"Nanoseconds": true, "Duration": true, "Kbps": true, "Bps": true,
}

// classify infers the unit family of one operand subtree. A subtree that
// carries a conversion factor, a conversion call, or identifiers of more
// than one class in a dimension is converting units itself and returns
// unitMixed (never flagged against anything).
func classify(expr ast.Expr) unitClass {
	found := unitNone
	mixed := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if mixed {
			return false
		}
		switch e := n.(type) {
		case *ast.BasicLit:
			if (e.Kind == token.INT || e.Kind == token.FLOAT) && conversionFactors[e.Value] {
				mixed = true
			}
		case *ast.CallExpr:
			name := ""
			switch fn := e.Fun.(type) {
			case *ast.Ident:
				name = fn.Name
			case *ast.SelectorExpr:
				name = fn.Sel.Name
			}
			if conversionCalls[name] || hasConversionWord(name) {
				mixed = true
				return false
			}
		case *ast.Ident:
			if hasConversionWord(e.Name) {
				mixed = true
				return false
			}
			c := classOfName(e.Name)
			if c == unitNone {
				return true
			}
			if found == unitNone {
				found = c
			} else if found != c {
				mixed = true
			}
		}
		return true
	})
	if mixed {
		return unitMixed
	}
	return found
}

// classOfName maps an identifier to a unit class via its camelCase /
// snake_case words: sizeBytes -> bytes, totalBits -> bits, durMs -> ms.
func classOfName(name string) unitClass {
	c := unitNone
	for _, w := range splitWords(name) {
		var wc unitClass
		switch w {
		case "bit", "bits":
			wc = unitBits
		case "byte", "bytes":
			wc = unitBytes
		case "sec", "secs", "second", "seconds":
			wc = unitSec
		case "ms", "msec", "msecs", "milli", "millis", "millisecond", "milliseconds":
			wc = unitMs
		default:
			continue
		}
		if c != unitNone && c != wc {
			return unitMixed
		}
		c = wc
	}
	return c
}

// hasConversionWord reports whether a name's words advertise a conversion
// ("toBytes", "bitsPerSec", "convFactor", "msScale").
func hasConversionWord(name string) bool {
	for _, w := range splitWords(name) {
		switch w {
		case "per", "to", "conv", "convert", "factor", "scale", "ratio":
			return true
		}
	}
	return false
}

// splitWords lowercases and splits an identifier on case and underscore
// boundaries.
func splitWords(name string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, cur.String())
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || unicode.IsDigit(r):
			flush()
		case unicode.IsUpper(r):
			// Boundary unless continuing an acronym run.
			if i > 0 && !unicode.IsUpper(runes[i-1]) {
				flush()
			} else if i+1 < len(runes) && unicode.IsLower(runes[i+1]) {
				flush()
			}
			cur.WriteRune(unicode.ToLower(r))
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return words
}
