package analysis

import (
	"go/ast"
	"strings"
)

// wallClockFuncs are the time functions that read or wait on the real
// clock. Inside the discrete-event simulator, virtual time comes from
// netsim.Engine.Now; any of these makes a replay non-deterministic.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// NewSimClock builds the simclock analyzer. It fires only in packages
// whose import path starts with one of simPrefixes: the discrete-event
// simulation packages where a wall-clock read silently breaks
// bit-for-bit replay determinism. Randomness discipline (the global
// math/rand source, time-seeded generators) is the globalrand analyzer's
// domain.
func NewSimClock(simPrefixes ...string) *Analyzer {
	return &Analyzer{
		Name: "simclock",
		Doc:  "forbid wall-clock time in simulation packages",
		Run: func(pass *Pass) {
			if !pathHasPrefix(pass.Path, simPrefixes) {
				return
			}
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					base, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					if pass.PkgName(file, base) == "time" && wallClockFuncs[sel.Sel.Name] {
						pass.Reportf(sel.Pos(), Warning,
							"time.%s reads the wall clock: simulation packages must use virtual time (netsim.Engine) for replay determinism", sel.Sel.Name)
					}
					return true
				})
			}
		},
	}
}

// pathHasPrefix reports whether path is one of the prefixes or below it.
func pathHasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
