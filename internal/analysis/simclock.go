package analysis

import (
	"go/ast"
	"strings"
)

// wallClockFuncs are the time functions that read or wait on the real
// clock. Inside the discrete-event simulator, virtual time comes from
// netsim.Engine.Now; any of these makes a replay non-deterministic.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// seededRandFuncs are the math/rand names that construct explicitly
// seeded generators (or name types); everything else on the package is
// the process-global source, which breaks same-seed replay.
var seededRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Zipf":      true,
}

// NewSimClock builds the simclock analyzer. It fires only in packages
// whose import path starts with one of simPrefixes: the discrete-event
// simulation packages where wall-clock time or the global math/rand
// source silently breaks bit-for-bit replay determinism.
func NewSimClock(simPrefixes ...string) *Analyzer {
	return &Analyzer{
		Name: "simclock",
		Doc:  "forbid wall-clock time and global math/rand in simulation packages",
		Run: func(pass *Pass) {
			if !pathHasPrefix(pass.Path, simPrefixes) {
				return
			}
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					base, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					switch pass.PkgName(file, base) {
					case "time":
						if wallClockFuncs[sel.Sel.Name] {
							pass.Reportf(sel.Pos(), Warning,
								"time.%s reads the wall clock: simulation packages must use virtual time (netsim.Engine) for replay determinism", sel.Sel.Name)
						}
					case "math/rand", "math/rand/v2":
						if !seededRandFuncs[sel.Sel.Name] {
							pass.Reportf(sel.Pos(), Warning,
								"rand.%s uses the process-global random source: simulation packages must thread an explicitly seeded *rand.Rand for replay determinism", sel.Sel.Name)
						}
					}
					return true
				})
			}
		},
	}
}

// pathHasPrefix reports whether path is one of the prefixes or below it.
func pathHasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
