package analysis

import (
	"go/ast"
	"go/token"
)

// TimelinePath is the flight-recorder package whose mutation discipline
// recmut enforces.
const TimelinePath = "demuxabr/internal/timeline"

// recorderTypes are the timeline types whose mutation is confined to the
// engine goroutine's call tree.
var recorderTypes = []string{"Recorder", "Counters"}

// NewRecMut builds the recmut analyzer: a timeline.Recorder (or its
// Counters) captured from an enclosing scope must not be mutated inside a
// goroutine or a runpool job closure. Every event is appended from inside
// the discrete-event engine's single-threaded run loop — that is what
// makes flight-recorder exports byte-identical across repeat runs and
// -parallel worker counts. A worker closure calling Emit (or writing a
// counter field) on a captured recorder interleaves events in scheduling
// order and silently breaks the export-determinism contract.
//
// A recorder constructed inside the closure is fine: it belongs to that
// job's own session and engine.
func NewRecMut(simPrefixes ...string) *Analyzer {
	return &Analyzer{
		Name: "recmut",
		Doc:  "forbid mutating captured timeline recorders from worker closures",
		Run: func(pass *Pass) {
			if !pathHasPrefix(pass.Path, simPrefixes) {
				return
			}
			for _, file := range pass.Files {
				runRecMut(pass, file)
			}
		},
	}
}

func runRecMut(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				checkWorkerRecorderUse(pass, lit, "goroutine")
			}
		case *ast.CallExpr:
			pkgPath, fn := pass.CalleePkgFunc(file, st)
			if pkgPath == RunpoolPath && (fn == "Map" || fn == "Collect") && len(st.Args) > 0 {
				if lit, ok := st.Args[len(st.Args)-1].(*ast.FuncLit); ok {
					checkWorkerRecorderUse(pass, lit, "runpool job")
				}
			}
		}
		return true
	})
}

// checkWorkerRecorderUse flags recorder mutations on captured receivers
// inside one worker closure.
func checkWorkerRecorderUse(pass *Pass, lit *ast.FuncLit, ctx string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isRecorderExpr(pass, sel.X) || !isMutatingMethod(sel.Sel.Name) {
				return true
			}
			if capturedBase(pass, sel.X, lit) {
				pass.Reportf(st.Pos(), Warning,
					"%s on a recorder captured by a %s: timeline events must be appended from the engine goroutine's call tree only, or exports stop being byte-identical across worker counts", sel.Sel.Name, ctx)
			}
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				checkRecorderFieldWrite(pass, lit, lhs, ctx)
			}
		case *ast.IncDecStmt:
			checkRecorderFieldWrite(pass, lit, st.X, ctx)
		}
		return true
	})
}

// checkRecorderFieldWrite flags writes through a captured recorder or
// counters value (c.Events++, rec.X = ...).
func checkRecorderFieldWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr, ctx string) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if !isRecorderExpr(pass, sel.X) {
		return
	}
	if capturedBase(pass, sel.X, lit) {
		pass.Reportf(lhs.Pos(), Warning,
			"write to %s of a recorder captured by a %s: timeline state must only change inside the engine goroutine's call tree", sel.Sel.Name, ctx)
	}
}

// isMutatingMethod names the recorder methods that append or alter state;
// the read-only accessors (Enabled, Events, Counters, ...) are safe from
// any goroutine that observes a quiescent recorder.
func isMutatingMethod(name string) bool {
	switch name {
	case "Emit", "Record", "Append", "Reset", "Observe":
		return true
	}
	return false
}

// isRecorderExpr reports whether e's static type is (a pointer to) one of
// the timeline recorder types.
func isRecorderExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	for _, name := range recorderTypes {
		if IsNamedType(t, TimelinePath, name) {
			return true
		}
	}
	return false
}

// capturedBase reports whether the expression's base identifier is
// declared outside the closure (captured). An unresolvable base counts as
// captured only when it is not declared anywhere inside the literal.
func capturedBase(pass *Pass, e ast.Expr, lit *ast.FuncLit) bool {
	base := rootIdent(e)
	if base == nil {
		return false
	}
	outside, known := pass.DeclaredOutside(base, lit.Pos(), lit.End())
	if !known {
		return !localNames(lit)[base.Name]
	}
	return outside
}
