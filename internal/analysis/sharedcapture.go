package analysis

import (
	"go/ast"
	"go/token"
)

// RunpoolPath is the import path of the worker-pool package whose job
// closures the sharedcapture analyzer inspects.
const RunpoolPath = "demuxabr/internal/runpool"

// NewSharedCapture builds the sharedcapture analyzer: a closure submitted
// to runpool.Map or runpool.Collect must not write state captured from
// the enclosing scope. Jobs run on worker goroutines in claim order, so a
// captured variable, map, slice element, or field written by one job is
// read (or racily overwritten) by another in a schedule-dependent order —
// the exact bug class the serial-vs-parallel equivalence tests catch at
// runtime, caught here before the code ever runs.
//
// Writing through the job's own index into a captured slice
// (`out[i] = ...` where i is the job parameter) is the one allowed
// pattern: the partitions are disjoint and the result independent of
// scheduling — it is how runpool itself collects results.
func NewSharedCapture() *Analyzer {
	return &Analyzer{
		Name: "sharedcapture",
		Doc:  "forbid runpool job closures writing shared captured state",
		Run:  runSharedCapture,
	}
}

func runSharedCapture(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn := pass.CalleePkgFunc(file, call)
			if pkgPath != RunpoolPath || (fn != "Map" && fn != "Collect") {
				return true
			}
			// Map(workers, n, job) / Collect(workers, n, job): the job is
			// the final argument.
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkJobClosure(pass, lit)
			return true
		})
	}
}

// checkJobClosure flags writes inside the job literal whose target is
// declared outside it.
func checkJobClosure(pass *Pass, lit *ast.FuncLit) {
	params := jobParams(lit)
	local := localNames(lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				checkWrite(pass, lit, lhs, params, local)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, st.X, params, local)
		}
		return true
	})
}

// checkWrite reports one write target when its base is captured from the
// enclosing scope.
func checkWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr, params, local map[string]bool) {
	base, kind, exempt := writeBase(pass, lhs, params)
	if base == nil || base.Name == "_" || exempt {
		return
	}
	outside, known := pass.DeclaredOutside(base, lit.Pos(), lit.End())
	if !known {
		// Degraded type info: fall back to the closure's declared-name set.
		outside = !local[base.Name]
	}
	if !outside {
		return
	}
	pass.Reportf(lhs.Pos(), Warning,
		"runpool job writes captured %s %q: jobs run on worker goroutines, so shared writes make the result depend on scheduling; return the value from the job (or index a slice by the job parameter) instead", kind, base.Name)
}

// writeBase peels an assignment target down to its base identifier,
// classifying the write and deciding the disjoint-index exemption.
func writeBase(pass *Pass, lhs ast.Expr, params map[string]bool) (base *ast.Ident, kind string, exempt bool) {
	switch e := lhs.(type) {
	case *ast.Ident:
		return e, "variable", false
	case *ast.SelectorExpr:
		b := rootIdent(e.X)
		return b, "field of", false
	case *ast.StarExpr:
		b := rootIdent(e.X)
		return b, "pointee of", false
	case *ast.IndexExpr:
		b := rootIdent(e.X)
		if b == nil {
			return nil, "", false
		}
		if isMapType(pass.TypeOf(e.X)) {
			// Concurrent map writes race even on distinct keys.
			return b, "map", false
		}
		// Slice or array: writing the job's own index is the sanctioned
		// disjoint-partition pattern.
		if id, ok := e.Index.(*ast.Ident); ok && params[id.Name] {
			return b, "slice", true
		}
		return b, "slice", false
	}
	return nil, "", false
}

// rootIdent walks selector/index/star chains down to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// jobParams collects the job literal's parameter names (the per-job index
// that makes disjoint slice writes safe).
func jobParams(lit *ast.FuncLit) map[string]bool {
	params := map[string]bool{}
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, id := range f.Names {
				params[id.Name] = true
			}
		}
	}
	return params
}

// localNames collects every name declared inside the literal — the
// fallback free-variable test when type information is degraded.
func localNames(lit *ast.FuncLit) map[string]bool {
	local := jobParams(lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range st.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						local[id.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if id, ok := e.(*ast.Ident); ok && st.Tok == token.DEFINE {
					local[id.Name] = true
				}
			}
		case *ast.FuncLit:
			for _, f := range st.Type.Params.List {
				for _, id := range f.Names {
					local[id.Name] = true
				}
			}
		}
		return true
	})
	return local
}
