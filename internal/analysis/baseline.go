package analysis

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the set of grandfathered findings vetabr tolerates: each
// entry keys one finding by slash-relative file, rule, and message —
// deliberately not by line, so unrelated edits above a grandfathered
// finding do not churn the file. The committed vetabr.baseline gates
// check.sh: a finding in the baseline is reported but does not fail the
// run; a finding absent from it does; and a baseline entry matching
// nothing is stale and must be burned down (deleted) — the file only
// ever shrinks.
type Baseline struct {
	entries map[string]int
}

// baselineKey renders one finding's identity line.
func baselineKey(f Finding) string {
	return f.Pos.Filename + "\t" + f.Rule + "\t" + f.Message
}

// ParseBaseline reads the baseline format: one tab-separated
// file/rule/message triple per line, "#" comments and blank lines
// ignored. Duplicate lines grandfather that many findings.
func ParseBaseline(data []byte) *Baseline {
	b := &Baseline{entries: map[string]int{}}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		b.entries[line]++
	}
	return b
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline, so a repo without grandfathered findings needs no file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ParseBaseline(nil), nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	return ParseBaseline(data), nil
}

// FormatBaseline renders findings in the parseable baseline format,
// sorted, with a header documenting the burn-down contract. Findings
// should carry root-relative slash paths (see RelFindings).
func FormatBaseline(findings []Finding) []byte {
	var buf bytes.Buffer
	buf.WriteString("# vetabr.baseline — grandfathered static-analysis findings.\n")
	buf.WriteString("# Format: file<TAB>rule<TAB>message, one entry per tolerated finding.\n")
	buf.WriteString("# Entries may only be deleted (burned down), never added by hand:\n")
	buf.WriteString("# regenerate with `go run ./cmd/vetabr -baseline vetabr.baseline -write-baseline ./...`.\n")
	var keys []string
	for _, f := range findings {
		keys = append(keys, baselineKey(f))
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Take consumes one grandfathered slot for the finding, reporting
// whether the baseline covered it.
func (b *Baseline) Take(f Finding) bool {
	key := baselineKey(f)
	if b.entries[key] > 0 {
		b.entries[key]--
		return true
	}
	return false
}

// Stale returns the baseline entries no finding consumed — fixed
// findings whose lines must now be deleted from the file.
func (b *Baseline) Stale() []string {
	var keys []string
	for key, n := range b.entries {
		for ; n > 0; n-- {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}

// RelFindings rewrites finding positions to slash-separated paths
// relative to root — the stable form baselines, SARIF artifacts, and CI
// logs want regardless of the invocation directory. Paths outside root
// are left untouched.
func RelFindings(root string, findings []Finding) {
	for i := range findings {
		findings[i].Pos.Filename = relPath(root, findings[i].Pos.Filename)
		if findings[i].End.IsValid() {
			findings[i].End.Filename = relPath(root, findings[i].End.Filename)
		}
	}
}

// relPath makes one path root-relative when it lies under root.
func relPath(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
