package analysis

import (
	"go/ast"
	"go/token"
)

// NewRangeLeak builds the rangeleak analyzer, the dataflow generalization
// of maporder's unconditional-return rule: a value derived from map-range
// loop variables that escapes the loop through a chain of plain
// assignments into a variable declared outside the loop, and then reaches
// a return (or is a named result) without an intervening sort, is an
// arbitrary map entry leaking into the function's output.
//
// The walk is deliberately small and intra-procedural:
//
//   - taint seeds are the range statement's key and value identifiers;
//   - taint propagates through := and = whose right-hand side mentions a
//     tainted name;
//   - compound assignments (+=, *=, ...) never propagate — accumulation
//     commutes, which is why sums over maps are the house idiom;
//   - an assignment guarded by a condition that mentions a variable
//     written in the same branch is an extremum reduction
//     (if v > best { best = v }) and never flagged;
//   - direct appends are maporder's domain and skipped here, so one bug
//     is one finding.
func NewRangeLeak() *Analyzer {
	return &Analyzer{
		Name: "rangeleak",
		Doc:  "flag map-range values escaping through assignments into returns without a sort",
		Run:  runRangeLeak,
	}
}

func runRangeLeak(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var results *ast.FieldList
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, results = fn.Body, fn.Type.Results
			case *ast.FuncLit:
				body, results = fn.Body, fn.Type.Results
			default:
				return true
			}
			if body != nil {
				checkFuncRangeLeaks(pass, body, results)
			}
			return true
		})
	}
}

// checkFuncRangeLeaks inspects one function body; nested literals get
// their own visit.
func checkFuncRangeLeaks(pass *Pass, body *ast.BlockStmt, results *ast.FieldList) {
	named := namedResults(results)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMapType(pass.TypeOf(rng.X)) {
			return true
		}
		for _, esc := range escapes(pass, rng) {
			if sortedAfter(body, rng, esc.name) {
				continue
			}
			if named[esc.name] || returnedAfter(body, rng, esc.name) {
				pass.Reportf(esc.pos, Warning,
					"%q is assigned from map-range loop variables and reaches the function's return without a sort: iteration order is randomized per run, so an arbitrary entry escapes", esc.name)
			}
		}
		return true
	})
}

// escape is one outer-scope variable receiving tainted data in the loop.
type escape struct {
	name string
	pos  token.Pos
}

// escapes runs the taint walk over one map-range body and returns the
// outer variables that received values derived from the loop variables.
func escapes(pass *Pass, rng *ast.RangeStmt) []escape {
	tainted := map[string]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			tainted[id.Name] = true
		}
	}
	if len(tainted) == 0 {
		return nil
	}
	inner := map[string]bool{} // declared inside the loop body
	seen := map[string]bool{}
	var out []escape
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							inner[id.Name] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			rhsTainted := false
			for _, rhs := range st.Rhs {
				if isDirectAppend(rhs) {
					// maporder's domain: appends are flagged there.
					continue
				}
				if mentionsAny(rhs, tainted) {
					rhsTainted = true
				}
			}
			switch st.Tok {
			case token.DEFINE:
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						inner[id.Name] = true
						if rhsTainted {
							tainted[id.Name] = true
						}
					}
				}
			case token.ASSIGN:
				if !rhsTainted {
					break
				}
				for _, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" || inner[id.Name] || seen[id.Name] {
						// Indexed and field writes rebuild keyed content —
						// deterministic regardless of visit order.
						continue
					}
					tainted[id.Name] = true
					if reductionGuarded(rng, st) {
						continue
					}
					seen[id.Name] = true
					out = append(out, escape{name: id.Name, pos: st.Pos()})
				}
			default:
				// Compound assignment: order-insensitive accumulation.
			}
		}
		return true
	})
	return out
}

// isDirectAppend matches append(...) right-hand sides.
func isDirectAppend(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// mentionsAny reports whether expr mentions any name in the set.
func mentionsAny(expr ast.Expr, names map[string]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && names[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// reductionGuarded reports whether the assignment sits under an if (inside
// the range body) whose condition mentions a variable that the same branch
// assigns — the extremum-reduction shape (if v > best { best = v }), which
// converges to the same value in any iteration order.
func reductionGuarded(rng *ast.RangeStmt, target *ast.AssignStmt) bool {
	guarded := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || guarded {
			return !guarded
		}
		if target.Pos() < ifs.Body.Pos() || target.End() > ifs.Body.End() {
			return true
		}
		assigned := map[string]bool{}
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			if as, ok := m.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						assigned[id.Name] = true
					}
				}
			}
			return true
		})
		if mentionsAny(ifs.Cond, assigned) {
			guarded = true
			return false
		}
		return true
	})
	return guarded
}

// returnedAfter reports whether name appears in a return statement
// positioned after the range loop within the function body.
func returnedAfter(body *ast.BlockStmt, rng *ast.RangeStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= rng.End() {
			return true
		}
		for _, res := range ret.Results {
			if mentionsIdent(res, name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// namedResults collects the function's named result identifiers: a bare
// `return` makes any of them an implicit sink.
func namedResults(results *ast.FieldList) map[string]bool {
	named := map[string]bool{}
	if results == nil {
		return named
	}
	for _, f := range results.List {
		for _, id := range f.Names {
			named[id.Name] = true
		}
	}
	return named
}
