package analysis

import (
	"go/ast"
	"go/token"
)

// seededRandFuncs are the math/rand names that construct explicitly
// seeded generators (or name types); everything else on the package is
// the process-global source, which breaks same-seed replay.
var seededRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"NewPCG":    true, // math/rand/v2
	"Rand":      true,
	"Source":    true,
	"Zipf":      true,
	"PCG":       true,
}

// NewGlobalRand builds the globalrand analyzer: inside simulation
// packages, every random draw must come from a locally constructed,
// explicitly seeded source. It flags
//
//   - math/rand (and v2) top-level functions — they draw from the
//     process-global source, whose sequence depends on every other draw
//     in the process (and on Go version);
//   - rand.Seed — seeding the global source advertises exactly the
//     pattern the repo bans;
//   - time-seeded sources — rand.NewSource(time.Now().UnixNano()) and
//     friends are seeded, but from the wall clock, so two runs of the
//     same scenario never replay. The seed must come from configuration.
//
// The time-seeded case carries a -fix rewrite substituting the constant
// seed 1 for the wall-clock expression: deterministic by construction,
// and a marker a human immediately sees and threads a real seed through.
func NewGlobalRand(simPrefixes ...string) *Analyzer {
	return &Analyzer{
		Name: "globalrand",
		Doc:  "forbid the global math/rand source and time-seeded generators in simulation packages",
		Run: func(pass *Pass) {
			if !pathHasPrefix(pass.Path, simPrefixes) {
				return
			}
			for _, file := range pass.Files {
				runGlobalRand(pass, file)
			}
		},
	}
}

func runGlobalRand(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			pkgPath, fn := pass.CalleePkgFunc(file, e)
			if !isRandPkg(pkgPath) {
				return true
			}
			switch {
			case fn == "Seed":
				pass.Reportf(e.Pos(), Warning,
					"rand.Seed reseeds the process-global source: simulation packages must construct their own rand.New(rand.NewSource(seed)) from configuration")
				return false
			case fn == "New" || fn == "NewSource" || fn == "NewPCG" || fn == "NewChaCha8":
				for _, arg := range e.Args {
					// rand.New(rand.NewSource(...)): the inner constructor
					// is visited on its own; reporting it here too would
					// duplicate the finding and overlap the fixes.
					if inner, ok := arg.(*ast.CallExpr); ok {
						if p, _ := pass.CalleePkgFunc(file, inner); isRandPkg(p) {
							continue
						}
					}
					if pos, call := timeDerived(pass, file, arg); pos != token.NoPos {
						pass.ReportFixf(arg.Pos(), arg.End(), Warning,
							[]Edit{{Pos: arg.Pos(), End: arg.End(), NewText: "1"}},
							"rand source seeded from the wall clock (%s): a time-derived seed makes every run unique and unreproducible; thread the scenario seed from configuration", call)
					}
				}
				return true
			case !seededRandFuncs[fn]:
				pass.Reportf(e.Pos(), Warning,
					"rand.%s draws from the process-global source: its sequence depends on every other draw in the process; use an explicitly seeded *rand.Rand", fn)
				return false
			}
		}
		return true
	})
}

// isRandPkg matches both math/rand generations.
func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// timeDerived reports the position and rendering of the first package
// time selector inside expr (e.g. "time.Now"), or NoPos when the
// expression does not read the clock.
func timeDerived(pass *Pass, file *ast.File, expr ast.Expr) (token.Pos, string) {
	var pos token.Pos
	var name string
	ast.Inspect(expr, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pass.PkgName(file, base) == "time" {
			pos, name = sel.Pos(), "time."+sel.Sel.Name
			return false
		}
		return true
	})
	return pos, name
}
