package analysis

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"sort"
	"strings"
)

// ApplyFixes applies every finding's mechanical rewrites to the given
// sources (filename -> content) and returns the rewritten files, gofmt
// formatted, with imports orphaned by a rewrite removed. Only files that
// changed appear in the result. Overlapping edits within one file are an
// error: vetabr -fix refuses to guess rather than corrupt source.
func ApplyFixes(findings []Finding, src map[string][]byte) (map[string][]byte, int, error) {
	byFile := map[string][]TextEdit{}
	applied := 0
	for _, f := range findings {
		for _, e := range f.Fixes {
			byFile[e.Filename] = append(byFile[e.Filename], e)
		}
		if len(f.Fixes) > 0 {
			applied++
		}
	}
	out := map[string][]byte{}
	var files []string
	for name := range byFile {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		content, ok := src[name]
		if !ok {
			return nil, 0, fmt.Errorf("analysis: fix targets unknown file %s", name)
		}
		fixed, err := applyEdits(content, byFile[name])
		if err != nil {
			return nil, 0, fmt.Errorf("analysis: %s: %w", name, err)
		}
		fixed, err = tidySource(fixed)
		if err != nil {
			return nil, 0, fmt.Errorf("analysis: %s after fix: %w", name, err)
		}
		out[name] = fixed
	}
	return out, applied, nil
}

// applyEdits splices the edits into content, highest offset first so
// earlier offsets stay valid.
func applyEdits(content []byte, edits []TextEdit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start > edits[j].Start
		}
		return edits[i].End > edits[j].End
	})
	prevStart := len(content) + 1
	for _, e := range edits {
		if e.Start < 0 || e.End > len(content) || e.Start > e.End {
			return nil, fmt.Errorf("edit range [%d,%d) outside file of %d bytes", e.Start, e.End, len(content))
		}
		if e.End > prevStart {
			return nil, fmt.Errorf("overlapping fixes at offset %d; apply and re-run", e.Start)
		}
		prevStart = e.Start
		content = append(content[:e.Start], append([]byte(e.NewText), content[e.End:]...)...)
	}
	return content, nil
}

// tidySource drops imports a rewrite orphaned (a fix that replaces
// time.Now().UnixNano() with a literal leaves "time" unused, which would
// not compile) and gofmt-formats the result.
func tidySource(src []byte) ([]byte, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixed.go", src, parser.ParseComments)
	if err != nil {
		// The edit produced unparseable code; surface it instead of
		// writing a broken file.
		return nil, err
	}
	used := usedNames(file)
	var drops []TextEdit
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." || used[name] {
			continue
		}
		start := fset.Position(imp.Pos()).Offset
		end := fset.Position(imp.End()).Offset
		// Swallow the rest of the line so no blank line is left behind.
		for end < len(src) && src[end] != '\n' {
			end++
		}
		if end < len(src) {
			end++
		}
		drops = append(drops, TextEdit{Start: start, End: end})
	}
	if len(drops) > 0 {
		if src, err = applyEdits(src, drops); err != nil {
			return nil, err
		}
	}
	return format.Source(src)
}

// usedNames collects identifier names referenced outside import specs —
// the conservative "is this import still used" test.
func usedNames(file *ast.File) map[string]bool {
	used := map[string]bool{}
	for _, decl := range file.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				used[id.Name] = true
			}
			return true
		})
	}
	return used
}
