package analysis

// SimPackagePrefixes are the discrete-event simulation packages where
// simclock enforces virtual-time and seeded-randomness discipline. The
// real-network packages (httpclient, originserver) legitimately read the
// wall clock and are deliberately absent.
var SimPackagePrefixes = []string{
	"demuxabr/internal/netsim",
	"demuxabr/internal/core",
	"demuxabr/internal/player",
	"demuxabr/internal/abr",
	"demuxabr/internal/experiments",
	"demuxabr/internal/cdnsim",
	// Fleet co-simulations share one engine across sessions; arrivals and
	// per-session fault seeds must derive from the fleet config alone.
	"demuxabr/internal/fleet",
	"demuxabr/internal/trace",
	"demuxabr/internal/media",
	// Fault plans are part of the simulated world: every injected failure
	// must derive from the plan's seed, never from wall time or math/rand.
	"demuxabr/internal/faults",
	// runpool fans sessions out across goroutines — concurrency is its
	// whole point and is allowed; wall-clock reads and unseeded randomness
	// inside its jobs would still break replay determinism and are banned
	// like in any other simulation package.
	"demuxabr/internal/runpool",
	// The flight recorder stores engine timestamps only; a wall-clock read
	// here would leak nondeterminism into every exported timeline.
	"demuxabr/internal/timeline",
}

// DefaultAnalyzers is the vetabr suite: every project invariant the repo
// enforces over its own source. TestVetABR runs it under go test ./...;
// cmd/vetabr runs it from the command line.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewSimClock(SimPackagePrefixes...),
		NewGlobalRand(SimPackagePrefixes...),
		NewMapOrder(),
		NewRangeLeak(),
		NewSharedCapture(),
		NewRecMut(SimPackagePrefixes...),
		NewFloatEq(),
		NewUnits(),
	}
}
