package analysis

// The fixture harness: every analyzer gets a testdata/<rule>/ directory
// holding one or more fixture packages (one subdirectory each), loaded
// into the in-memory RunPackages entry point. Expectations live in the
// fixture source itself as trailing comments:
//
//	total += i // want "writes captured variable"
//
// Each quoted string is a regular expression that must match a finding's
// "[rule] message" rendering on that exact line; unmatched expectations
// and unexpected findings both fail the test. A fixture file may pin its
// package import path (to enter the sim scope, or to impersonate a module
// package such as runpool) with a directive anywhere in the file:
//
//	//fixture:path demuxabr/internal/fleet
//
// Adding analyzer #9 is therefore a two-file change: the analyzer source
// and its fixture directory.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePathDirective pins a fixture package's import path.
const fixturePathDirective = "//fixture:path "

// wantRe extracts quoted expectations from a `// want` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// fixture is one rule's loaded testdata tree.
type fixture struct {
	pkgs  map[string]map[string]string // import path -> file -> source
	wants map[string]map[int][]string  // file -> line -> regexes
}

// loadFixture reads testdata/<rule>/<pkg>/*.go into memory.
func loadFixture(t *testing.T, rule string) fixture {
	t.Helper()
	root := filepath.Join("testdata", rule)
	dirs, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("fixture for %s: %v", rule, err)
	}
	fx := fixture{
		pkgs:  map[string]map[string]string{},
		wants: map[string]map[int][]string{},
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		pkgDir := filepath.Join(root, d.Name())
		entries, err := os.ReadDir(pkgDir)
		if err != nil {
			t.Fatal(err)
		}
		pkgPath := d.Name()
		files := map[string]string{}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(pkgDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			name := d.Name() + "/" + e.Name()
			files[name] = src
			for ln, line := range strings.Split(src, "\n") {
				if strings.HasPrefix(strings.TrimSpace(line), fixturePathDirective) {
					pkgPath = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), fixturePathDirective))
				}
				_, wantPart, ok := strings.Cut(line, "// want ")
				if !ok {
					continue
				}
				for _, m := range wantRe.FindAllStringSubmatch(wantPart, -1) {
					byLine := fx.wants[name]
					if byLine == nil {
						byLine = map[int][]string{}
						fx.wants[name] = byLine
					}
					byLine[ln+1] = append(byLine[ln+1], m[1])
				}
			}
		}
		if len(files) > 0 {
			fx.pkgs[pkgPath] = files
		}
	}
	if len(fx.pkgs) == 0 {
		t.Fatalf("fixture for %s: no packages under %s", rule, root)
	}
	return fx
}

// runFixture analyzes one rule's fixture tree and diffs findings against
// the // want expectations.
func runFixture(t *testing.T, rule string, analyzers []*Analyzer) {
	t.Helper()
	fx := loadFixture(t, rule)
	findings, err := RunPackages(fx.pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	matchFindings(t, fx.wants, findings)
}

// matchFindings pairs findings with expectations one-to-one.
func matchFindings(t *testing.T, wants map[string]map[int][]string, findings []Finding) {
	t.Helper()
	type slot struct {
		re   string
		used bool
	}
	slots := map[string][]*slot{} // "file:line" -> expectations
	for file, byLine := range wants {
		for line, res := range byLine {
			key := fmt.Sprintf("%s:%d", file, line)
			for _, re := range res {
				slots[key] = append(slots[key], &slot{re: re})
			}
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		text := fmt.Sprintf("[%s] %s", f.Rule, f.Message)
		matched := false
		for _, s := range slots[key] {
			if s.used {
				continue
			}
			re, err := regexp.Compile(s.re)
			if err != nil {
				t.Fatalf("bad want regexp %q: %v", s.re, err)
			}
			if re.MatchString(text) {
				s.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ss := range slots {
		for _, s := range ss {
			if !s.used {
				t.Errorf("%s: expected finding matching %q, got none", key, s.re)
			}
		}
	}
}

func TestSharedCaptureFixture(t *testing.T) {
	runFixture(t, "sharedcapture", []*Analyzer{NewSharedCapture()})
}

func TestGlobalRandFixture(t *testing.T) {
	runFixture(t, "globalrand", []*Analyzer{NewGlobalRand(SimPackagePrefixes...)})
}

func TestRangeLeakFixture(t *testing.T) {
	runFixture(t, "rangeleak", []*Analyzer{NewRangeLeak()})
}

func TestRecMutFixture(t *testing.T) {
	runFixture(t, "recmut", []*Analyzer{NewRecMut(SimPackagePrefixes...)})
}

// TestFleetBugsFailVetabrWhereVetIsSilent is the acceptance pin: the
// deliberate shared-capture, global-rand, and unsorted-map-range bugs the
// fixtures seed into a package impersonating internal/fleet all
// type-check (and contain nothing `go vet` reports), yet the full vetabr
// suite fails each of them.
func TestFleetBugsFailVetabrWhereVetIsSilent(t *testing.T) {
	for _, rule := range []string{"sharedcapture", "globalrand", "rangeleak", "recmut"} {
		t.Run(rule, func(t *testing.T) {
			fx := loadFixture(t, rule)
			findings, err := RunPackages(fx.pkgs, DefaultAnalyzers())
			if err != nil {
				t.Fatal(err)
			}
			warned := map[string]bool{}
			for _, f := range findings {
				if f.Severity == Warning {
					warned[f.Rule] = true
				}
			}
			if !warned[rule] {
				t.Errorf("full suite over the %s fixture raised no %s warning (got %v)", rule, rule, findings)
			}
		})
	}
}
