package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewFloatEq builds the floateq analyzer: it flags ==/!= where either
// operand is floating point. Exact float comparison silently diverges
// across compilers and optimization levels (fused multiply-add, 80-bit
// intermediates), drifting QoE metrics between runs; compare against an
// epsilon or restructure instead.
func NewFloatEq() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "flag == and != between floating-point operands",
		Run: func(pass *Pass) {
			for _, file := range pass.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					bin, ok := n.(*ast.BinaryExpr)
					if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
						return true
					}
					if isFloat(pass.TypeOf(bin.X)) || isFloat(pass.TypeOf(bin.Y)) {
						pass.Reportf(bin.OpPos, Warning,
							"%s between floating-point values is exact and non-portable; compare with a tolerance", bin.Op)
					}
					return true
				})
			}
		},
	}
}

// isFloat reports whether t (possibly nil) is floating point.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
