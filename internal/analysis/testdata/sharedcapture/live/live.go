//fixture:path demuxabr/internal/player

// Package player seeds the shared-capture hazards of the live
// latency-target controller. The playback-rate state (centirate, skew
// accounting, resync tally) belongs to exactly one session on one
// engine; reaching it from runpool job closures makes the catch-up
// arithmetic claim-order dependent — the same schedule-dependent bug
// class the live fleet's shard-equivalence gate catches at runtime,
// caught here before the code runs.
package player

import "demuxabr/internal/runpool"

// liveRateState mirrors the per-session playback-rate controller block.
type liveRateState struct {
	rate        int // centirate: 100 = 1.0x
	rateChanges int
	resyncs     int
	bySeed      map[int]float64
}

// sharedRateTicks: every seed's controller tick nudges one captured
// rate state — the settled rate depends on job claim order.
func sharedRateTicks(ls *liveRateState, seeds int) []int {
	return runpool.Collect(0, seeds, func(i int) int {
		ls.rate += i % 3 // want "writes captured field of .ls."
		return ls.rate
	})
}

// sharedChangeTally: folding per-seed rate-change counts into a captured
// aggregate from inside the jobs instead of after the pool drains.
func sharedChangeTally(ls *liveRateState, seeds int) ([]int, error) {
	return runpool.Map(0, seeds, func(i int) (int, error) {
		ls.rateChanges++ // want "writes captured field of .ls."
		return i, nil
	})
}

// sharedResyncMap: per-seed mean rates keyed into a captured map —
// concurrent map writes on top of the ordering hazard.
func sharedResyncMap(ls *liveRateState, seeds int) []int {
	return runpool.Collect(0, seeds, func(i int) int {
		ls.bySeed[i] = 1.0 // want "writes captured map .ls."
		ls.resyncs++       // want "writes captured field of .ls."
		return i
	})
}

// sharedControllerSlot: every seed publishes its controller through slot
// zero of a captured table instead of its own.
func sharedControllerSlot(seeds int) []*liveRateState {
	states := make([]*liveRateState, seeds)
	runpool.Collect(0, seeds, func(i int) int {
		states[0] = &liveRateState{rate: 100} // want "writes captured slice .states."
		return i
	})
	return states
}

// perSeedController is the sanctioned shape: each job owns its
// controller (its own session, its own engine) and publishes through its
// own slot; the caller folds after the pool drains.
func perSeedController(seeds int) (int, []int) {
	rates := runpool.Collect(0, seeds, func(i int) int {
		ls := &liveRateState{rate: 100}
		ls.rate += i % 3
		ls.rateChanges++
		return ls.rate
	})
	changes := 0
	for range rates {
		changes++
	}
	return changes, rates
}

// readRateBounds is fine: jobs may read quiescent controller config.
func readRateBounds(ls *liveRateState, seeds int) []int {
	return runpool.Collect(0, seeds, func(i int) int {
		return i + ls.rate
	})
}
