//fixture:path demuxabr/internal/netsim

// Package netsim seeds the shared-capture hazards of the transport
// layer's per-connection state. A Conn's accounting block is mutated by
// every request that rides it, and with demuxed tracks the audio and
// video fetch paths share the same connection — so a Conn reached from
// a runpool job closure is written in claim order, exactly the
// schedule-dependent bug class the serial-vs-parallel gate catches at
// runtime. Caught here instead, before the code runs.
package netsim

import "demuxabr/internal/runpool"

// ConnStats mirrors the transport accounting block a connection carries.
type ConnStats struct {
	Handshakes int
	Resumes    int
	ByStream   map[int]int
}

// Conn mirrors the per-connection state the audio and video request
// paths share: one stats block, one in-flight gauge.
type Conn struct {
	Stats    ConnStats
	inFlight int
}

// sharedConnTally: one conn captured by both the audio job (i=0) and
// the video job (i=1) — the resume tally becomes claim-order dependent.
func sharedConnTally(c *Conn) []int {
	return runpool.Collect(0, 2, func(i int) int {
		c.Stats.Resumes++ // want "writes captured field of .c."
		return i
	})
}

// sharedInFlight: the in-flight gauge is engine state; ticking it from
// jobs races the open/close bookkeeping.
func sharedInFlight(c *Conn, requests int) ([]int, error) {
	return runpool.Map(0, requests, func(i int) (int, error) {
		c.inFlight++ // want "writes captured field of .c."
		return i, nil
	})
}

// sharedStreamMap: per-stream byte counts keyed into a captured map —
// concurrent map writes on top of the ordering hazard.
func sharedStreamMap(c *Conn, streams int) []int {
	return runpool.Collect(0, streams, func(i int) int {
		c.Stats.ByStream[i] = i // want "writes captured map .c."
		return i
	})
}

// sharedFleetTotal: folding every session's handshake count into one
// captured aggregate from inside the jobs.
func sharedFleetTotal(sessions int, total *ConnStats) ([]int, error) {
	return runpool.Map(0, sessions, func(i int) (int, error) {
		total.Handshakes += 1 // want "writes captured field of .total."
		return i, nil
	})
}

// sharedConnSlot: all sessions report through slot zero of a captured
// per-session conn table instead of their own.
func sharedConnSlot(sessions int) []*Conn {
	conns := make([]*Conn, sessions)
	runpool.Collect(0, sessions, func(i int) int {
		conns[0] = &Conn{} // want "writes captured slice .conns."
		return i
	})
	return conns
}

// perSessionConn is the sanctioned shape: each job owns its connection
// (its own session, its own engine) and publishes through its own slot.
func perSessionConn(sessions int) []ConnStats {
	out := make([]ConnStats, sessions)
	runpool.Collect(0, sessions, func(i int) int {
		c := &Conn{}
		c.Stats.Handshakes++
		out[i] = c.Stats
		return i
	})
	return out
}

// mergeAfterDrain is the sanctioned aggregate: jobs return their stats
// and the caller folds them once the pool has drained.
func mergeAfterDrain(sessions int) ConnStats {
	per := runpool.Collect(0, sessions, func(i int) ConnStats {
		c := Conn{}
		c.Stats.Resumes = i % 2
		return c.Stats
	})
	var total ConnStats
	for _, s := range per {
		total.Resumes += s.Resumes
	}
	return total
}

// readSharedConfig is fine: jobs may read quiescent transport settings.
func readSharedConfig(c *Conn, sessions int) []int {
	return runpool.Collect(0, sessions, func(i int) int {
		return i + c.Stats.Handshakes
	})
}
