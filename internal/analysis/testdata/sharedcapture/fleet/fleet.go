//fixture:path demuxabr/internal/fleet

// Package fleet seeds the deliberate shared-capture bugs the analyzer
// must catch: every write below compiles, passes go vet, and would only
// surface at runtime as a serial-vs-parallel divergence.
package fleet

import "demuxabr/internal/runpool"

// Stats is shared aggregation state a careless job might reach for.
type Stats struct {
	Total int
	ByID  map[int]int
}

func sharedScalar(n int) int {
	total := 0
	runpool.Collect(0, n, func(i int) int {
		total += i // want "writes captured variable .total."
		return i
	})
	return total
}

func sharedField(n int, st *Stats) ([]int, error) {
	return runpool.Map(0, n, func(i int) (int, error) {
		st.Total = st.Total + i // want "writes captured field of .st."
		return i, nil
	})
}

func sharedMap(n int, st *Stats) []int {
	return runpool.Collect(0, n, func(i int) int {
		st.ByID[i] = i // want "writes captured map .st."
		return i
	})
}

func sharedMapVar(n int) map[int]int {
	agg := map[int]int{}
	runpool.Collect(0, n, func(i int) int {
		agg[i] = i // want "writes captured map .agg."
		return i
	})
	return agg
}

func sharedSliceWrongIndex(n int) []int {
	out := make([]int, n)
	runpool.Collect(0, n, func(i int) int {
		out[0] = i // want "writes captured slice .out."
		return i
	})
	return out
}

func sharedPointer(n int, p *int) []int {
	return runpool.Collect(0, n, func(i int) int {
		*p = i // want "writes captured pointee of .p."
		return i
	})
}

// disjointIndex is the sanctioned pattern: each job owns its own slot.
func disjointIndex(n int) []int {
	out := make([]int, n)
	runpool.Collect(0, n, func(i int) int {
		out[i] = i * 2
		return i
	})
	return out
}

// localState never escapes the job.
func localState(n int) []int {
	return runpool.Collect(0, n, func(i int) int {
		acc := 0
		for j := 0; j < i; j++ {
			acc += j
		}
		return acc
	})
}

// capturedRead is fine: jobs may read shared immutable configuration.
func capturedRead(n int, scale int) []int {
	return runpool.Collect(0, n, func(i int) int {
		return i * scale
	})
}

// suppressed documents the escape hatch.
func suppressed(n int) int {
	hits := 0
	runpool.Collect(1, n, func(i int) int {
		//lint:ignore sharedcapture single-worker pool in this diagnostic path runs jobs serially
		hits++
		return i
	})
	return hits
}
