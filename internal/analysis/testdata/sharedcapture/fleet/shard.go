//fixture:path demuxabr/internal/fleet

// Cross-shard merge patterns from the sharded fleet runner: each shard
// job simulates a stripe of contention cells. The buggy shapes fold into
// one shared accumulator from inside the jobs; the sanctioned shape
// returns a per-shard aggregate and merges after the pool drains.
package fleet

import "demuxabr/internal/runpool"

// shardAgg mirrors the sharded fleet's per-worker aggregation state: a
// completion tally plus histogram bins (the quantile sketch).
type shardAgg struct {
	Completed int
	Bins      []int64
}

// merge folds another shard's aggregate into a.
func (a *shardAgg) merge(o *shardAgg) {
	a.Completed += o.Completed
	for i, c := range o.Bins {
		a.Bins[i] += c
	}
}

// sharedShardAccumulator is the bug: every shard job folds its cells into
// the one captured accumulator, racing on the tally and the bins.
func sharedShardAccumulator(shards, cells int) *shardAgg {
	agg := &shardAgg{Bins: make([]int64, 8)}
	runpool.Collect(shards, shards, func(sh int) int {
		for ci := sh; ci < cells; ci += shards {
			agg.Completed++ // want "writes captured field of .agg."
		}
		return sh
	})
	return agg
}

// sharedShardBins races on the sketch bins through the captured pointer.
func sharedShardBins(shards int, agg *shardAgg) []int {
	return runpool.Collect(0, shards, func(sh int) int {
		agg.Bins[sh%len(agg.Bins)]++ // want "writes captured slice .agg."
		return sh
	})
}

// sharedCompletedCounter races a bare tally across shard jobs.
func sharedCompletedCounter(shards, cellsPerShard int) int {
	completed := 0
	runpool.Collect(0, shards, func(sh int) int {
		completed += cellsPerShard // want "writes captured variable .completed."
		return sh
	})
	return completed
}

// perShardAggregates is the sanctioned cross-shard merge: each job builds
// and returns its own aggregate; the fold happens serially after Collect.
func perShardAggregates(shards, cells int) *shardAgg {
	aggs := runpool.Collect(0, shards, func(sh int) *shardAgg {
		a := &shardAgg{Bins: make([]int64, 8)}
		for ci := sh; ci < cells; ci += shards {
			a.Completed++
			a.Bins[ci%len(a.Bins)]++
		}
		return a
	})
	total := &shardAgg{Bins: make([]int64, 8)}
	for _, a := range aggs {
		total.merge(a)
	}
	return total
}
