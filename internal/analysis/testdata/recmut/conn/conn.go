//fixture:path demuxabr/internal/netsim

// Package netsim seeds the recorder-mutation bugs the transport layer
// could introduce: a connection that emits its handshake/HoL events
// from a worker goroutine or a runpool job interleaves them in
// scheduling order, and the flight-recorder export stops being
// byte-identical across -parallel counts. Transport events must be
// appended from the engine goroutine's call tree, like every other
// timeline event.
package netsim

import (
	"demuxabr/internal/runpool"
	"demuxabr/internal/timeline"
)

// Conn mirrors a connection that carries its session's recorder so the
// transport layer can stamp handshakes and HoL stalls on the timeline.
type Conn struct {
	rec *timeline.Recorder
	c   timeline.Counters
}

// handshakeFromGoroutine: stamping the handshake off the engine
// goroutine — the event lands at a schedule-dependent position.
func handshakeFromGoroutine(conn *Conn, done chan struct{}) {
	go func() {
		conn.rec.Emit("handshake", 0) // want "Emit on a recorder captured by a goroutine"
		close(done)
	}()
}

// handshakeFromJob: per-session jobs stamping onto one shared recorder.
func handshakeFromJob(rec *timeline.Recorder, sessions int) []int {
	return runpool.Collect(0, sessions, func(i int) int {
		rec.Emit("handshake", float64(i)) // want "Emit on a recorder captured by a runpool job"
		return i
	})
}

// tallyFromGoroutine: the conn's counter block is recorder state too.
func tallyFromGoroutine(conn *Conn) {
	go func() {
		conn.c.Events++ // want "write to Events of a recorder captured by a goroutine"
	}()
}

// holStallFromJob: counting HoL stalls into a shared tally block from
// inside the pool.
func holStallFromJob(c *timeline.Counters, streams int) []int {
	return runpool.Collect(0, streams, func(i int) int {
		c.Events++ // want "write to Events of a recorder captured by a runpool job"
		return i
	})
}

// engineHandshake is the sanctioned shape: the conn emits from the
// engine goroutine's call tree — no closure, no finding.
func engineHandshake(conn *Conn) {
	conn.rec.Emit("handshake", 1)
	conn.c.Events++
}

// perSessionRecorder: each job owns its session's conn and recorder,
// so mutation stays inside the job.
func perSessionRecorder(sessions int) []int {
	return runpool.Collect(0, sessions, func(i int) int {
		conn := &Conn{rec: timeline.New()}
		conn.rec.Emit("handshake", 0)
		return conn.rec.Count().Events
	})
}

// readEnabled: any goroutine may ask a quiescent recorder whether it is
// recording.
func readEnabled(conn *Conn, done chan bool) {
	go func() {
		done <- conn.rec.Enabled()
	}()
}
