//fixture:path demuxabr/internal/runpool

// Package runpool is a fixture stub of the worker pool (see the
// sharedcapture fixture for the rationale).
package runpool

// Map mirrors runpool.Map.
func Map[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		v, err := job(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Collect mirrors runpool.Collect.
func Collect[T any](workers, n int, job func(i int) T) []T {
	out, _ := Map(workers, n, func(i int) (T, error) { return job(i), nil })
	return out
}
