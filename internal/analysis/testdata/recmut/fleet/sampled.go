//fixture:path demuxabr/internal/fleet

// Sampled-recorder patterns from the sharded fleet runner: with
// -sample-timelines only every k-th session gets a recorder, and shard
// jobs are tempted to emit into the shared sampled set (or the one
// uplink recorder) from inside the pool.
package fleet

import (
	"demuxabr/internal/runpool"
	"demuxabr/internal/timeline"
)

// sampledSharedUplink is the bug: every shard job emits into the single
// captured uplink recorder, interleaving events in scheduling order.
func sampledSharedUplink(uplink *timeline.Recorder, shards int) []int {
	return runpool.Collect(0, shards, func(sh int) int {
		uplink.Emit("cell-done", float64(sh)) // want "Emit on a recorder captured by a runpool job"
		return sh
	})
}

// sampledSharedSet emits into a pre-built sampled-recorder set from the
// jobs: even though each index is touched once, the recorder identity is
// captured and the append races with any other emitter.
func sampledSharedSet(recs []*timeline.Recorder, n, k int) []int {
	return runpool.Collect(0, n, func(i int) int {
		if i%k == 0 {
			recs[i/k].Emit("session-done", float64(i)) // want "Emit on a recorder captured by a runpool job"
		}
		return i
	})
}

// sampledPerJob is the sanctioned shape: a sampled session's recorder is
// created inside the job that owns it, mutated only there, and returned
// for deterministic post-pool collection (nil for unsampled sessions).
func sampledPerJob(n, k int) []*timeline.Recorder {
	return runpool.Collect(0, n, func(i int) *timeline.Recorder {
		if i%k != 0 {
			return nil
		}
		rec := timeline.New()
		rec.Emit("session-done", float64(i))
		return rec
	})
}
