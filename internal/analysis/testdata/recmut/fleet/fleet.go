//fixture:path demuxabr/internal/fleet

// Package fleet seeds the recorder-mutation bugs recmut catches: events
// appended from worker goroutines interleave in scheduling order, so
// timeline exports stop being byte-identical across -parallel counts.
package fleet

import (
	"demuxabr/internal/runpool"
	"demuxabr/internal/timeline"
)

func emitFromGoroutine(rec *timeline.Recorder, done chan struct{}) {
	go func() {
		rec.Emit("join", 0) // want "Emit on a recorder captured by a goroutine"
		close(done)
	}()
}

func emitFromJob(rec *timeline.Recorder, n int) []int {
	return runpool.Collect(0, n, func(i int) int {
		rec.Emit("session-done", float64(i)) // want "Emit on a recorder captured by a runpool job"
		return i
	})
}

func countFromGoroutine(c *timeline.Counters) {
	go func() {
		c.Events++ // want "write to Events of a recorder captured by a goroutine"
	}()
}

// perJobRecorder is the sanctioned pattern: each job owns its recorder
// (its own session, its own engine) and mutation stays inside.
func perJobRecorder(n int) []int {
	return runpool.Collect(0, n, func(i int) int {
		rec := timeline.New()
		rec.Emit("start", 0)
		return rec.Count().Events
	})
}

// engineEmit appends from the engine call tree — no closure, no finding.
func engineEmit(rec *timeline.Recorder) {
	rec.Emit("tick", 1)
}

// readOnly observers may look at a quiescent recorder from any goroutine.
func readOnly(rec *timeline.Recorder, done chan bool) {
	go func() {
		done <- rec.Enabled()
	}()
}
