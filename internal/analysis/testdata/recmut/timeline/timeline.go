//fixture:path demuxabr/internal/timeline

// Package timeline is a fixture stub of the flight recorder: the same
// type names at the same import path, so consumer fixtures resolve to
// the identities recmut checks for in the live tree.
package timeline

// Event is one recorded timeline entry.
type Event struct {
	At   float64
	Kind string
}

// Counters mirrors the recorder's tally block: exported fields mutated
// only inside the engine's call tree.
type Counters struct {
	Events int
}

// Recorder mirrors the real flight recorder's surface.
type Recorder struct {
	events []Event
	c      Counters
}

// New constructs an empty recorder.
func New() *Recorder { return &Recorder{} }

// Emit appends one event.
func (r *Recorder) Emit(kind string, at float64) {
	r.events = append(r.events, Event{At: at, Kind: kind})
	r.c.Events++
}

// Enabled reports whether recording is on.
func (r *Recorder) Enabled() bool { return true }

// Count returns a copy of the tallies.
func (r *Recorder) Count() Counters { return r.c }
