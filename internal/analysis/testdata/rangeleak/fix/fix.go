// Package fix seeds the assignment-chain escapes rangeleak exists for:
// values derived from map-range loop variables that reach a return
// through plain assignments, without a sort, so an arbitrary entry
// (whichever the runtime iterates last) becomes the function's answer.
package fix

import "slices"

func lastEntry(m map[string]int) string {
	last := ""
	for k := range m {
		last = k // want ".last. is assigned from map-range loop variables"
	}
	return last
}

// chained taints an intermediate first: d carries v into pick.
func chained(m map[int]int) int {
	pick := 0
	for _, v := range m {
		d := v * 2
		pick = d // want ".pick. is assigned from map-range loop variables"
	}
	return pick
}

// namedResult leaks through a bare return of a named result.
func namedResult(m map[string]float64) (peak float64) {
	for _, v := range m {
		peak = v // want ".peak. is assigned from map-range loop variables"
		break
	}
	return
}

// overLimit looks like a search but overwrites on every match: when
// several entries pass the threshold, an arbitrary one wins.
func overLimit(m map[string]int, limit int) string {
	hit := ""
	for k, v := range m {
		if v > limit {
			hit = k // want ".hit. is assigned from map-range loop variables"
		}
	}
	return hit
}

// sortedAfterwards pins the escape hatch: a sort between the loop and
// the return restores determinism.
func sortedAfterwards(m map[string][]int) []int {
	var segs []int
	for _, v := range m {
		segs = v
	}
	slices.Sort(segs)
	return segs
}

// appended is maporder's domain, not rangeleak's: one bug, one finding.
func appended(m map[string][]string) []string {
	var all []string
	for _, vs := range m {
		all = append(all, vs...)
	}
	slices.Sort(all)
	return all
}

// total is the house idiom: compound accumulation commutes.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// maxVal is the extremum reduction: converges in any iteration order.
func maxVal(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// invert rebuilds keyed content: deterministic regardless of visit order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// anyKey documents the suppression escape hatch.
func anyKey(m map[string]int) string {
	pick := ""
	for k := range m {
		//lint:ignore rangeleak any witness key works for the error message
		pick = k
	}
	return pick
}
