// Package other sits outside the simulation scope: tooling and
// real-network helpers may use the convenience global source.
package other

import "math/rand"

// Jitter spreads retry delays; reproducibility is not a goal here.
func Jitter(n int) int { return rand.Intn(n) }
