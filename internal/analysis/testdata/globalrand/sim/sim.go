//fixture:path demuxabr/internal/faults

// Package faults impersonates a simulation-scope package: every random
// draw here must come from an explicitly seeded, locally constructed
// source or the same fault plan stops replaying run to run.
package faults

import (
	"math/rand"
	"time"
)

func globalDraw(n int) int {
	return rand.Intn(n) // want "rand.Intn draws from the process-global source"
}

func globalFloat() float64 {
	return rand.Float64() // want "rand.Float64 draws from the process-global source"
}

func seedGlobal(seed int64) {
	rand.Seed(seed) // want "rand.Seed reseeds the process-global source"
}

func wallSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock .time.Now."
}

func wallSeedDirect() rand.Source {
	return rand.NewSource(time.Now().Unix()) // want "seeded from the wall clock .time.Now."
}

// good is the house idiom: the seed arrives from configuration.
func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// derived sources seeded from another draw are equally fine.
func derived(parent *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(parent.Int63()))
}

func suppressed() int {
	//lint:ignore globalrand jitter only pads a log line, never reaches results
	return rand.Intn(3)
}
