package analysis

import (
	"path/filepath"
	"testing"
)

// TestVetABR runs the full vetabr suite over the repository's own source
// as part of go test ./..., making the simulator-determinism and
// unit-safety invariants a tier-1 gate: any unsuppressed warning anywhere
// in the tree fails the build.
func TestVetABR(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunDir(root, DefaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Severity == Warning {
			t.Errorf("%s", f)
		} else {
			t.Logf("%s", f)
		}
	}
}
