package analysis

import (
	"path/filepath"
	"testing"
)

// TestVetABR runs the full vetabr suite over the repository's own source
// as part of go test ./..., making the simulator-determinism and
// unit-safety invariants a tier-1 gate: any warning anywhere in the tree
// that is neither suppressed nor grandfathered in vetabr.baseline fails
// the build — and so does a stale baseline entry, so the baseline can
// only burn down.
func TestVetABR(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunDir(root, DefaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	RelFindings(root, findings)
	base, err := LoadBaseline(filepath.Join(root, "vetabr.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		switch {
		case f.Severity != Warning:
			t.Logf("%s", f)
		case base.Take(f):
			t.Logf("%s (baselined)", f)
		default:
			t.Errorf("%s", f)
		}
	}
	for _, key := range base.Stale() {
		t.Errorf("stale vetabr.baseline entry (finding fixed — delete the line): %s", key)
	}
}
