package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewMapOrder builds the maporder analyzer: it flags `for range` over a
// map whose body accumulates into a slice declared outside the loop (or
// prints directly) when no sort of that slice follows in the same
// function, and unconditional `return` statements inside the body whose
// value depends on the loop variables. Map iteration order is randomized
// per run, so the former makes figure and report output differ between
// identical invocations and the latter returns an arbitrary map entry.
func NewMapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag map iteration feeding slices or output without a subsequent sort",
		Run:  runMapOrder,
	}
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncMapRanges(pass, file, body)
			}
			return true
		})
	}
}

// checkFuncMapRanges inspects one function body for unordered map ranges.
// Nested function literals are checked by their own runMapOrder visit.
func checkFuncMapRanges(pass *Pass, file *ast.File, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMapType(pass.TypeOf(rng.X)) {
			return true
		}
		for _, target := range appendTargets(rng) {
			name := target.Name
			if !sortedAfter(body, rng, name) {
				fixes := sortInsertFix(pass, file, rng, target)
				pass.ReportFixf(rng.Pos(), rng.End(), Warning, fixes,
					"map range appends to %q with no subsequent sort: iteration order is randomized per run, making output non-reproducible", name)
			}
		}
		if pos, fn := printsInside(pass, rng); pos != token.NoPos {
			pass.Reportf(pos, Warning,
				"map range calls %s directly: iteration order is randomized per run, making printed output non-reproducible", fn)
		}
		if pos := unconditionalReturn(rng); pos != token.NoPos {
			pass.Reportf(pos, Warning,
				"map range returns a value derived from its loop variables on the first iteration: iteration order is randomized per run, so an arbitrary entry is returned")
		}
		return true
	})
}

// isMapType reports whether t (possibly nil) has a map underlying type.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// appendTargets returns identifiers of variables declared outside the
// range body that its statements grow via append.
func appendTargets(rng *ast.RangeStmt) []*ast.Ident {
	declared := map[string]bool{}
	// The loop variables themselves are per-iteration.
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok {
			declared[id.Name] = true
		}
	}
	seen := map[string]bool{}
	var out []*ast.Ident
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						declared[id.Name] = true
					}
				}
				return true
			}
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(st.Lhs) {
					continue
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok || declared[id.Name] || seen[id.Name] {
					continue
				}
				seen[id.Name] = true
				out = append(out, id)
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							declared[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether, after the range statement ends, the
// function body contains a sort-like call mentioning name.
func sortedAfter(body *ast.BlockStmt, rng *ast.RangeStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		if !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsIdent(arg, name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort.X / slices.SortX calls and method calls whose
// name contains "Sort".
func isSortCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
		return true
	}
	return sel.Sel.Name == "Sort"
}

// mentionsIdent reports whether expr contains an identifier named name.
func mentionsIdent(expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}

// printsInside returns the position and name of the first fmt print call
// inside the range body writing to output, or NoPos.
func printsInside(pass *Pass, rng *ast.RangeStmt) (token.Pos, string) {
	var pos token.Pos
	var fn string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		for _, file := range pass.Files {
			if file.Pos() <= call.Pos() && call.Pos() <= file.End() {
				if pass.PkgName(file, base) == "fmt" && isPrintName(sel.Sel.Name) {
					pos, fn = call.Pos(), "fmt."+sel.Sel.Name
				}
				break
			}
		}
		return true
	})
	return pos, fn
}

// unconditionalReturn finds a `return` that executes on the loop's first
// iteration — a direct statement of the range body (possibly behind plain
// block nesting, never behind if/switch/select) — whose result mentions a
// loop variable. Returns behind a condition are a legitimate search over
// the map and stay unflagged.
func unconditionalReturn(rng *ast.RangeStmt) token.Pos {
	loopVars := map[string]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			loopVars[id.Name] = true
		}
	}
	if len(loopVars) == 0 {
		return token.NoPos
	}
	stmts := rng.Body.List
	for len(stmts) > 0 {
		switch st := stmts[0].(type) {
		case *ast.BlockStmt:
			stmts = append(append([]ast.Stmt{}, st.List...), stmts[1:]...)
			continue
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				for name := range loopVars {
					if mentionsIdent(res, name) {
						return st.Pos()
					}
				}
			}
			return token.NoPos
		case *ast.AssignStmt, *ast.DeclStmt, *ast.ExprStmt, *ast.IncDecStmt:
			// Straight-line statements cannot skip a following return.
			stmts = stmts[1:]
			continue
		}
		// Anything with control flow (if, for, switch, ...) makes a later
		// return conditional enough: stop.
		return token.NoPos
	}
	return token.NoPos
}

// sortInsertFix builds the mechanical rewrite for an append-without-sort
// finding: insert `slices.Sort(name)` directly after the range loop (plus
// the "slices" import when missing). Only slices of ordered basic types
// (strings, numbers) get a fix — sorting them deterministically is
// unambiguous, whereas struct slices need a human-chosen key.
func sortInsertFix(pass *Pass, file *ast.File, rng *ast.RangeStmt, target *ast.Ident) []Edit {
	if !sortableSlice(pass, target) {
		return nil
	}
	edits := []Edit{{
		Pos:     rng.End(),
		End:     rng.End(),
		NewText: "\nslices.Sort(" + target.Name + ")",
	}}
	if imp := importSlicesFix(file); imp != nil {
		edits = append(edits, *imp)
	}
	return edits
}

// sortableSlice reports whether the identifier is a slice of an ordered
// basic type.
func sortableSlice(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	sl, ok := obj.Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsOrdered) != 0
}

// importSlicesFix returns the edit adding the "slices" import, or nil
// when the file already imports it.
func importSlicesFix(file *ast.File) *Edit {
	var impDecl *ast.GenDecl
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		impDecl = gd
		for _, spec := range gd.Specs {
			if is, ok := spec.(*ast.ImportSpec); ok && is.Path.Value == `"slices"` {
				return nil
			}
		}
	}
	switch {
	case impDecl != nil && impDecl.Rparen.IsValid():
		return &Edit{Pos: impDecl.Rparen, End: impDecl.Rparen, NewText: "\"slices\"\n"}
	case impDecl != nil:
		return &Edit{Pos: impDecl.End(), End: impDecl.End(), NewText: "\nimport \"slices\""}
	default:
		return &Edit{Pos: file.Name.End(), End: file.Name.End(), NewText: "\n\nimport \"slices\""}
	}
}

// isPrintName matches fmt's printing functions (not Sprintf-style, whose
// result may be sorted later).
func isPrintName(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}
