package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TypeGraph is the cross-package view the v2 analyzers share: every
// module-internal package that has been type-checked so far, in import
// (topological) order. Per-file AST analyzers see one package at a time;
// the graph lets them resolve identities across package boundaries —
// "is this expression a *timeline.Recorder?", "does this call land in
// runpool?" — which is what turns a per-file linter into a package-level
// determinism analysis.
//
// The graph is best-effort like the rest of the engine: a package that
// failed to type-check is still present (possibly incomplete), and every
// query degrades to "unknown" rather than guessing.
type TypeGraph struct {
	fset *token.FileSet
	pkgs map[string]*types.Package
}

// newTypeGraph builds an empty graph over one file set.
func newTypeGraph(fset *token.FileSet) *TypeGraph {
	return &TypeGraph{fset: fset, pkgs: map[string]*types.Package{}}
}

// add registers one checked package.
func (g *TypeGraph) add(path string, pkg *types.Package) {
	if pkg != nil {
		g.pkgs[path] = pkg
	}
}

// Package returns the checked package for an import path, or nil.
func (g *TypeGraph) Package(path string) *types.Package {
	if g == nil {
		return nil
	}
	return g.pkgs[path]
}

// LookupType resolves pkgPath.name to its type, or nil when the package
// or the name is unknown.
func (g *TypeGraph) LookupType(pkgPath, name string) types.Type {
	pkg := g.Package(pkgPath)
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// IsNamedType reports whether t is (a pointer to) the named type
// pkgPath.name. It answers by object identity when the graph knows the
// package and by qualified name otherwise, so it works both over the real
// module and over synthetic fixture packages that mimic a module path.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// CalleePkgFunc resolves a call of the form pkg.Func(...) to the callee's
// import path and function name. It returns ("", "") for method calls,
// local calls, and anything it cannot attribute to an imported package.
func (p *Pass) CalleePkgFunc(file *ast.File, call *ast.CallExpr) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	path := p.PkgName(file, base)
	if path == "" {
		return "", ""
	}
	return path, sel.Sel.Name
}

// FileOf returns the parsed file containing pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// DeclaredOutside reports whether the identifier's declaration lies
// outside the [lo, hi] node span — i.e. the identifier is a free variable
// of a closure spanning that range. Package-level declarations always
// count as outside. When type information for the identifier is missing
// the answer is "unknown" (false, false).
func (p *Pass) DeclaredOutside(id *ast.Ident, lo, hi token.Pos) (outside, known bool) {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pos() == token.NoPos {
		return false, false
	}
	return v.Pos() < lo || v.Pos() > hi, true
}
