package cdnsim

import (
	"fmt"
	"testing"
	"testing/quick"

	"demuxabr/internal/faults"
	"demuxabr/internal/media"
)

func TestLRUBasics(t *testing.T) {
	c := NewCache(100)
	if hit := c.Request(Object{Key: "a", Size: 40}); hit {
		t.Error("first request must miss")
	}
	if hit := c.Request(Object{Key: "a", Size: 40}); !hit {
		t.Error("second request must hit")
	}
	c.Request(Object{Key: "b", Size: 40})
	c.Request(Object{Key: "c", Size: 40}) // evicts "a" (LRU after refresh? no: a was refreshed, b is LRU)
	if c.Used() > 100 {
		t.Errorf("used %d exceeds capacity", c.Used())
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("expected an eviction")
	}
}

func TestLRURecency(t *testing.T) {
	c := NewCache(100)
	c.Request(Object{Key: "a", Size: 50})
	c.Request(Object{Key: "b", Size: 50})
	c.Request(Object{Key: "a", Size: 50}) // refresh a; b becomes LRU
	c.Request(Object{Key: "c", Size: 50}) // evicts b
	if !c.Request(Object{Key: "a", Size: 50}) {
		t.Error("a should still be cached")
	}
	if c.Request(Object{Key: "b", Size: 50}) {
		t.Error("b should have been evicted")
	}
}

func TestOversizedObjectUncached(t *testing.T) {
	c := NewCache(100)
	c.Request(Object{Key: "big", Size: 500})
	if c.Used() != 0 {
		t.Errorf("oversized object cached: used=%d", c.Used())
	}
	if c.Request(Object{Key: "big", Size: 500}) {
		t.Error("oversized object must never hit")
	}
}

func TestCapacityInvariantProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		c := NewCache(1000)
		for _, k := range keys {
			c.Request(Object{Key: fmt.Sprintf("k%d", k%32), Size: int64(k%200) + 1})
			if c.Used() > 1000 {
				return false
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Requests
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOriginStorageMuxedVsDemuxed(t *testing.T) {
	// §1: M+N tracks demuxed vs M×N combinations muxed.
	c := media.DramaShow()
	demuxed := OriginStorage(c, Demuxed, nil)
	muxed := OriginStorage(c, Muxed, media.HAll(c))
	if muxed <= demuxed {
		t.Fatalf("muxed storage %d should exceed demuxed %d", muxed, demuxed)
	}
	// Exact relationship: muxed H_all stores each video 3x (N audio
	// variants) and each audio 6x (M video variants).
	var videoBytes, audioBytes int64
	for _, tr := range c.VideoTracks {
		videoBytes += c.TrackBytes(tr)
	}
	for _, tr := range c.AudioTracks {
		audioBytes += c.TrackBytes(tr)
	}
	wantMuxed := 3*videoBytes + 6*audioBytes
	if muxed != wantMuxed {
		t.Errorf("muxed storage = %d, want %d", muxed, wantMuxed)
	}
	if demuxed != videoBytes+audioBytes {
		t.Errorf("demuxed storage = %d, want %d", demuxed, videoBytes+audioBytes)
	}
}

func TestCacheHitAdvantageOfDemuxed(t *testing.T) {
	// The §1 scenario: user A watches V1+A2, user B later watches V1+A1.
	// Demuxed: B hits the cache for every V1 chunk. Muxed: B misses all.
	content := media.DramaShow()
	v1 := content.VideoTracks[0]
	a1, a2 := content.AudioTracks[0], content.AudioTracks[1]
	sessions := []Session{
		{Combo: media.Combo{Video: v1, Audio: a2}},
		{Combo: media.Combo{Video: v1, Audio: a1}},
	}
	const cap = 1 << 30 // ample: isolate the sharing effect
	demuxed := Workload(NewCache(cap), Demuxed, content, sessions)
	muxed := Workload(NewCache(cap), Muxed, content, sessions)
	if demuxed.HitRatio() <= muxed.HitRatio() {
		t.Errorf("demuxed hit ratio %.2f <= muxed %.2f", demuxed.HitRatio(), muxed.HitRatio())
	}
	if muxed.Hits != 0 {
		t.Errorf("muxed hits = %d, want 0 (all distinct objects)", muxed.Hits)
	}
	// Demuxed: per chunk, 4 requests (2 users x 2 tracks), 1 hit (B's V1).
	wantHits := int64(content.NumChunks())
	if demuxed.Hits != wantHits {
		t.Errorf("demuxed hits = %d, want %d", demuxed.Hits, wantHits)
	}
	// Demuxed also moves fewer origin bytes.
	if demuxed.BytesOrigin >= muxed.BytesOrigin {
		t.Errorf("demuxed origin bytes %d >= muxed %d", demuxed.BytesOrigin, muxed.BytesOrigin)
	}
}

func TestWorkloadManyViewers(t *testing.T) {
	// Many viewers across all H_sub combos: demuxed keeps a strictly
	// higher byte hit ratio.
	content := media.DramaShow()
	var sessions []Session
	for i, cb := range media.HSub(content) {
		for j := 0; j <= i%3; j++ {
			sessions = append(sessions, Session{Combo: cb})
		}
	}
	const cap = 1 << 30
	demuxed := Workload(NewCache(cap), Demuxed, content, sessions)
	muxed := Workload(NewCache(cap), Muxed, content, sessions)
	if demuxed.ByteHitRatio() < muxed.ByteHitRatio() {
		t.Errorf("demuxed byte hit ratio %.3f < muxed %.3f", demuxed.ByteHitRatio(), muxed.ByteHitRatio())
	}
}

func TestNewCacheRejectsBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive capacity should panic")
		}
	}()
	NewCache(0)
}

func TestModeString(t *testing.T) {
	if Demuxed.String() != "demuxed" || Muxed.String() != "muxed" {
		t.Errorf("mode strings wrong: %s/%s", Demuxed, Muxed)
	}
}

func TestPopulationDeterministicAndBounded(t *testing.T) {
	c := media.DramaShow()
	pop := Population{Viewers: 50, VideoZipf: 1.2, AudioSpread: 3, Seed: 7}
	a := pop.Sessions(c)
	b := pop.Sessions(c)
	if len(a) != 50 {
		t.Fatalf("sessions = %d", len(a))
	}
	for i := range a {
		if a[i].Combo.String() != b[i].Combo.String() {
			t.Fatal("population not deterministic")
		}
		if a[i].Combo.Video == nil || a[i].Combo.Audio == nil {
			t.Fatal("incomplete combo")
		}
	}
}

func TestPopulationZipfSkew(t *testing.T) {
	c := media.DramaShow()
	skewed := Population{Viewers: 2000, VideoZipf: 1.5, Seed: 1}.Sessions(c)
	counts := map[string]int{}
	for _, s := range skewed {
		counts[s.Combo.Video.ID]++
	}
	// The top rung by popularity must dominate the least popular by a wide
	// margin under Zipf 1.5.
	max, min := 0, len(skewed)
	for _, id := range []string{"V1", "V2", "V3", "V4", "V5", "V6"} {
		n := counts[id]
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if max < 4*min {
		t.Errorf("zipf skew too flat: max=%d min=%d (%v)", max, min, counts)
	}
}

func TestRankVideoRungs(t *testing.T) {
	got := rankVideoRungs(6)
	if len(got) != 6 || got[0] != 3 {
		t.Errorf("order = %v", got)
	}
	seen := map[int]bool{}
	for _, i := range got {
		if seen[i] {
			t.Fatalf("duplicate rung %d in %v", i, got)
		}
		seen[i] = true
	}
	if got := rankVideoRungs(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("single rung order = %v", got)
	}
}

func TestCacheSweepDemuxedDominates(t *testing.T) {
	c := media.DramaShow()
	pop := Population{Viewers: 30, VideoZipf: 1.2, AudioSpread: 3, Seed: 3}
	sizes := []int64{64 << 20, 256 << 20, 1 << 30}
	points := CacheSweep(c, pop, sizes)
	if len(points) != len(sizes)*2 {
		t.Fatalf("points = %d", len(points))
	}
	byKey := map[string]Stats{}
	for _, p := range points {
		byKey[fmt.Sprintf("%d/%s", p.CacheBytes, p.Mode)] = p.Stats
	}
	for _, size := range sizes {
		d := byKey[fmt.Sprintf("%d/demuxed", size)]
		m := byKey[fmt.Sprintf("%d/muxed", size)]
		if d.ByteHitRatio() < m.ByteHitRatio() {
			t.Errorf("cache %d MB: demuxed byte hit %.3f < muxed %.3f",
				size>>20, d.ByteHitRatio(), m.ByteHitRatio())
		}
	}
	// Hit ratios must be non-decreasing in cache size for each mode.
	for _, mode := range []Mode{Demuxed, Muxed} {
		prev := -1.0
		for _, size := range sizes {
			hr := byKey[fmt.Sprintf("%d/%s", size, mode)].HitRatio()
			if hr+1e-9 < prev {
				t.Errorf("%s: hit ratio decreased with cache size (%f -> %f)", mode, prev, hr)
			}
			prev = hr
		}
	}
}

func TestContains(t *testing.T) {
	c := NewCache(100)
	if c.Contains("a") {
		t.Error("empty cache contains a")
	}
	c.Request(Object{Key: "a", Size: 40})
	before := c.Stats()
	if !c.Contains("a") {
		t.Error("cached object not reported by Contains")
	}
	if got := c.Stats(); got != before {
		t.Errorf("Contains mutated stats: %+v vs %+v", got, before)
	}
}

func TestRequestFaultyNilPlanMatchesRequest(t *testing.T) {
	plain, faulty := NewCache(200), NewCache(200)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i%4)
		plain.Request(Object{Key: key, Size: 30})
		hit, served := faulty.RequestFaulty(Object{Key: key, Size: 30}, key, i, nil)
		if !served {
			t.Fatalf("nil plan failed request %d", i)
		}
		_ = hit
	}
	if plain.Stats() != faulty.Stats() {
		t.Errorf("nil-plan RequestFaulty diverged from Request:\n%+v\n%+v", plain.Stats(), faulty.Stats())
	}
}

func TestRequestFaultyTransientRetriesAndHitsShield(t *testing.T) {
	// Rate 1 with persistence 1: every first origin fetch fails, every
	// retry succeeds — so the edge serves everything, at the cost of one
	// origin error per distinct object.
	plan := &faults.Plan{Seed: 9, Rate: 1, Kinds: []faults.Kind{faults.HTTP503}, MaxPersistence: 1}
	c := NewCache(1 << 20)
	for round := 0; round < 3; round++ {
		hit, served := c.RequestFaulty(Object{Key: "v/0", Size: 100}, "V1", 0, plan)
		if !served {
			t.Fatalf("round %d: transient fault not absorbed by retry", round)
		}
		if round > 0 && !hit {
			t.Fatalf("round %d: cached object should hit without touching the origin", round)
		}
	}
	st := c.Stats()
	if st.OriginErrors != 1 {
		t.Errorf("OriginErrors = %d, want 1 (one failed first fetch, then cached)", st.OriginErrors)
	}
	if st.FailedRequests != 0 {
		t.Errorf("FailedRequests = %d, want 0", st.FailedRequests)
	}
}

func TestRequestFaultyPermanentFaultFailsRequest(t *testing.T) {
	plan := &faults.Plan{Seed: 9, Rate: 1, Kinds: []faults.Kind{faults.HTTP503}, MaxPersistence: -1}
	c := NewCache(1 << 20)
	hit, served := c.RequestFaulty(Object{Key: "v/0", Size: 100}, "V1", 0, plan)
	if hit || served {
		t.Fatalf("permanent origin fault served the object: hit=%v served=%v", hit, served)
	}
	st := c.Stats()
	if st.FailedRequests != 1 {
		t.Errorf("FailedRequests = %d, want 1", st.FailedRequests)
	}
	if st.OriginErrors != 2 {
		t.Errorf("OriginErrors = %d, want 2 (fetch + one retry)", st.OriginErrors)
	}
	if c.Contains("v/0") {
		t.Error("unserved object must not be cached")
	}
	if st.BytesServed != 0 {
		t.Errorf("BytesServed = %d for an unserved request", st.BytesServed)
	}
}

func TestWorkloadFaultyDemuxedSharesFaultExposure(t *testing.T) {
	content := media.DramaShow()
	combos := media.HSub(content)
	sessions := []Session{}
	for i := 0; i < 6; i++ {
		sessions = append(sessions, Session{Combo: combos[i%len(combos)]})
	}
	plan := &faults.Plan{Seed: 21, Rate: 0.3, Kinds: []faults.Kind{faults.HTTP503}, MaxPersistence: 1}

	run := func(mode Mode) Stats {
		return WorkloadFaulty(NewCache(1<<30), mode, content, sessions, plan)
	}
	demuxed, muxed := run(Demuxed), run(Muxed)
	if demuxed.FailedRequests != 0 {
		t.Errorf("transient faults (persistence 1 < 2 tries) failed %d demuxed requests", demuxed.FailedRequests)
	}
	if muxed.FailedRequests != 0 {
		t.Errorf("transient faults failed %d muxed requests", muxed.FailedRequests)
	}
	if demuxed.OriginErrors == 0 {
		t.Fatal("30% fault rate produced no origin errors")
	}
	// Determinism: a second identical run must be byte-identical.
	if again := run(Demuxed); again != demuxed {
		t.Errorf("faulty workload not deterministic:\n%+v\n%+v", again, demuxed)
	}
}
