package cdnsim

import (
	"demuxabr/internal/media"
)

// Edge is a shared CDN edge cache serving many concurrent player sessions.
// Unlike Workload — which replays synthetic request schedules — an Edge is
// driven request-by-request in whatever order the sessions' downloads
// actually interleave on the network, and keeps per-session hit accounting
// alongside the cache-wide aggregate. This is what makes the cross-session
// demuxing benefit measurable: when session B requests the video track
// session A already pulled through the cache, B's hit is recorded as B's,
// and the aggregate shows the origin offload.
type Edge struct {
	cache   *Cache
	mode    Mode
	content *media.Content
	per     []Stats

	// Observer, when non-nil, sees every request's outcome after the
	// per-session accounting — the flight recorder's hook for cache
	// hit/miss events. It must not issue further requests.
	Observer func(session int, key string, size int64, hit bool)

	// Lazily built key/size tables, shared across sessions requesting the
	// same track or combination — the per-request path does no string
	// formatting (see objectStream).
	trackStreams map[*media.Track]*objectStream
	muxedStreams map[[2]*media.Track]*objectStream
}

// NewEdge wraps a cache as a shared edge for the given number of
// concurrent sessions, serving the content in the given packaging mode.
func NewEdge(cache *Cache, mode Mode, content *media.Content, sessions int) *Edge {
	if sessions < 0 {
		panic("cdnsim: negative session count")
	}
	return &Edge{
		cache:        cache,
		mode:         mode,
		content:      content,
		per:          make([]Stats, sessions),
		trackStreams: make(map[*media.Track]*objectStream),
		muxedStreams: make(map[[2]*media.Track]*objectStream),
	}
}

// Mode returns the packaging mode the edge serves.
func (e *Edge) Mode() Mode { return e.mode }

// Sessions returns the number of sessions the edge accounts for.
func (e *Edge) Sessions() int { return len(e.per) }

// Aggregate returns the cache-wide counters.
func (e *Edge) Aggregate() Stats { return e.cache.Stats() }

// SessionStats returns the counters attributed to one session.
func (e *Edge) SessionStats(i int) Stats { return e.per[i] }

// RequestTrack serves one demuxed track chunk for a session and reports
// whether it hit the cache.
func (e *Edge) RequestTrack(session int, tr *media.Track, idx int) bool {
	st := e.trackStream(tr)
	return e.request(session, Object{Key: st.keys[idx], Size: st.sizes[idx]})
}

// RequestMuxed serves one muxed combination chunk for a session and reports
// whether it hit the cache.
func (e *Edge) RequestMuxed(session int, video, audio *media.Track, idx int) bool {
	st := e.muxedStream(video, audio)
	return e.request(session, Object{Key: st.keys[idx], Size: st.sizes[idx]})
}

func (e *Edge) request(session int, obj Object) bool {
	hit := e.cache.Request(obj)
	s := &e.per[session]
	s.Requests++
	s.BytesServed += obj.Size
	if hit {
		s.Hits++
	} else {
		s.Misses++
		s.BytesOrigin += obj.Size
	}
	if e.Observer != nil {
		e.Observer(session, obj.Key, obj.Size, hit)
	}
	return hit
}

func (e *Edge) trackStream(tr *media.Track) *objectStream {
	st, ok := e.trackStreams[tr]
	if !ok {
		n := e.content.NumChunksOf(tr.Type)
		st = &objectStream{id: tr.ID, keys: make([]string, n), sizes: e.content.TrackSizes(tr)}
		for idx := 0; idx < n; idx++ {
			st.keys[idx] = trackKey(tr, idx)
		}
		e.trackStreams[tr] = st
	}
	return st
}

func (e *Edge) muxedStream(video, audio *media.Track) *objectStream {
	pair := [2]*media.Track{video, audio}
	st, ok := e.muxedStreams[pair]
	if !ok {
		n := e.content.NumChunks()
		st = &objectStream{
			id:    video.ID + "+" + audio.ID,
			keys:  make([]string, n),
			sizes: make([]int64, n),
		}
		vs, as := e.content.TrackSizes(video), e.content.TrackSizes(audio)
		for idx := 0; idx < n; idx++ {
			st.keys[idx] = muxedKey(video, audio, idx)
			st.sizes[idx] = vs[idx] + as[idx]
		}
		e.muxedStreams[pair] = st
	}
	return st
}
