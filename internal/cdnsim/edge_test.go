package cdnsim

import (
	"testing"

	"demuxabr/internal/media"
)

func TestEdgePerSessionAccountingSumsToAggregate(t *testing.T) {
	content := media.DramaShow()
	v1 := content.VideoTracks[0]
	a1, a2 := content.AudioTracks[0], content.AudioTracks[1]
	e := NewEdge(NewCache(1<<30), Demuxed, content, 2)
	n := content.NumChunks()
	for idx := 0; idx < n; idx++ {
		e.RequestTrack(0, v1, idx)
		e.RequestTrack(0, a2, idx)
		e.RequestTrack(1, v1, idx)
		e.RequestTrack(1, a1, idx)
	}
	agg := e.Aggregate()
	var sum Stats
	for i := 0; i < e.Sessions(); i++ {
		s := e.SessionStats(i)
		sum.Requests += s.Requests
		sum.Hits += s.Hits
		sum.Misses += s.Misses
		sum.BytesServed += s.BytesServed
		sum.BytesOrigin += s.BytesOrigin
	}
	if sum.Requests != agg.Requests || sum.Hits != agg.Hits || sum.Misses != agg.Misses {
		t.Fatalf("per-session sums %+v disagree with aggregate %+v", sum, agg)
	}
	if sum.BytesServed != agg.BytesServed || sum.BytesOrigin != agg.BytesOrigin {
		t.Fatalf("per-session byte sums %+v disagree with aggregate %+v", sum, agg)
	}
}

func TestEdgeCrossSessionHitAttribution(t *testing.T) {
	// Session 0 pulls V1 through the cache; session 1, same video but a
	// different audio language, must hit on every V1 chunk — and the hits
	// must be attributed to session 1.
	content := media.DramaShow()
	v1 := content.VideoTracks[0]
	a1, a2 := content.AudioTracks[0], content.AudioTracks[1]
	e := NewEdge(NewCache(1<<30), Demuxed, content, 2)
	n := content.NumChunks()
	for idx := 0; idx < n; idx++ {
		e.RequestTrack(0, v1, idx)
		e.RequestTrack(0, a2, idx)
	}
	for idx := 0; idx < n; idx++ {
		e.RequestTrack(1, v1, idx)
		e.RequestTrack(1, a1, idx)
	}
	if got := e.SessionStats(0).Hits; got != 0 {
		t.Errorf("first session hits = %d, want 0", got)
	}
	if got, want := e.SessionStats(1).Hits, int64(n); got != want {
		t.Errorf("second session hits = %d, want %d (every V1 chunk)", got, want)
	}
}

func TestEdgeMuxedNoCrossSessionSharing(t *testing.T) {
	// The same pair of viewers in muxed mode: distinct combination objects,
	// zero sharing — the §1 contrast at the edge API level.
	content := media.DramaShow()
	v1 := content.VideoTracks[0]
	a1, a2 := content.AudioTracks[0], content.AudioTracks[1]
	e := NewEdge(NewCache(1<<30), Muxed, content, 2)
	n := content.NumChunks()
	for idx := 0; idx < n; idx++ {
		e.RequestMuxed(0, v1, a2, idx)
		e.RequestMuxed(1, v1, a1, idx)
	}
	if got := e.Aggregate().Hits; got != 0 {
		t.Errorf("muxed aggregate hits = %d, want 0 (all distinct objects)", got)
	}
	// Re-requests of the same combination do hit.
	if !e.RequestMuxed(0, v1, a2, 0) {
		t.Error("repeat muxed request should hit the cache")
	}
}

func TestEdgeKeysMatchWorkload(t *testing.T) {
	// Edge and Workload must agree on object identity: replaying the same
	// viewers through both yields identical aggregate stats.
	content := media.DramaShow()
	v1 := content.VideoTracks[0]
	a1, a2 := content.AudioTracks[0], content.AudioTracks[1]
	sessions := []Session{
		{Combo: media.Combo{Video: v1, Audio: a2}},
		{Combo: media.Combo{Video: v1, Audio: a1}},
	}
	for _, mode := range []Mode{Demuxed, Muxed} {
		w := Workload(NewCache(1<<30), mode, content, sessions)
		e := NewEdge(NewCache(1<<30), mode, content, len(sessions))
		n := content.NumChunks()
		for idx := 0; idx < n; idx++ {
			for si, s := range sessions {
				if mode == Muxed {
					e.RequestMuxed(si, s.Combo.Video, s.Combo.Audio, idx)
				} else {
					e.RequestTrack(si, s.Combo.Video, idx)
					e.RequestTrack(si, s.Combo.Audio, idx)
				}
			}
		}
		if got := e.Aggregate(); got != w {
			t.Errorf("%v: edge aggregate %+v != workload %+v", mode, got, w)
		}
	}
}
