package cdnsim

import (
	"math"
	"math/rand"

	"demuxabr/internal/media"
	"demuxabr/internal/runpool"
)

// Population synthesizes viewer sessions for cache experiments.
type Population struct {
	// Viewers is the session count.
	Viewers int
	// VideoZipf skews video-variant popularity (viewers cluster on a few
	// rungs, e.g. the ABR steady states for common access speeds). 0
	// disables the skew (uniform).
	VideoZipf float64
	// AudioSpread is the number of audio variants in active use (language
	// or quality tiers); viewers are spread uniformly across them.
	AudioSpread int
	// Seed makes the draw reproducible.
	Seed int64
}

// Sessions draws the viewer set for a content asset.
func (p Population) Sessions(c *media.Content) []Session {
	rng := rand.New(rand.NewSource(p.Seed))
	nv := len(c.VideoTracks)
	na := p.AudioSpread
	if na <= 0 || na > len(c.AudioTracks) {
		na = len(c.AudioTracks)
	}
	// Zipf weights over video rungs (rank 1 = most popular = middle rung,
	// then alternating outward: mid-ladder rates dominate real audiences).
	order := rankVideoRungs(nv)
	weights := make([]float64, nv)
	var total float64
	for rank, idx := range order {
		w := 1.0
		if p.VideoZipf > 0 {
			w = 1 / math.Pow(float64(rank+1), p.VideoZipf)
		}
		weights[idx] = w
		total += w
	}
	sessions := make([]Session, p.Viewers)
	for i := range sessions {
		r := rng.Float64() * total
		vi := 0
		for j, w := range weights {
			if r < w {
				vi = j
				break
			}
			r -= w
			vi = j
		}
		ai := rng.Intn(na)
		sessions[i] = Session{Combo: media.Combo{
			Video: c.VideoTracks[vi],
			Audio: c.AudioTracks[ai],
		}}
	}
	return sessions
}

// rankVideoRungs orders rung indexes by plausibility: middle rung first,
// then alternating outward.
func rankVideoRungs(n int) []int {
	mid := n / 2
	order := []int{mid}
	for d := 1; len(order) < n; d++ {
		if mid-d >= 0 {
			order = append(order, mid-d)
		}
		if mid+d < n && len(order) < n {
			order = append(order, mid+d)
		}
	}
	return order
}

// StaggeredWorkload replays sessions that start at different playback
// positions (viewers joining a popular asset at different times): at each
// step every session requests its own next chunk, wrapping at the end. The
// instantaneous working set spans the whole asset, so — unlike the
// lock-step Workload — cache capacity matters.
func StaggeredWorkload(cache *Cache, mode Mode, c *media.Content, sessions []Session, seed int64) Stats {
	rng := rand.New(rand.NewSource(seed))
	n := c.NumChunks()
	offsets := make([]int, len(sessions))
	for i := range offsets {
		offsets[i] = rng.Intn(n)
	}
	plans := planSessions(mode, c, sessions)
	for t := 0; t < n; t++ {
		for i, p := range plans {
			p.request(cache, (offsets[i]+t)%n)
		}
	}
	return cache.Stats()
}

// CacheSweepPoint is one cell of a cache-size sweep.
type CacheSweepPoint struct {
	CacheBytes int64
	Mode       Mode
	Stats      Stats
}

// CacheSweep replays the same staggered population through caches of
// increasing size in both packaging modes — the capacity dimension of the
// §1 cache-hit argument: demuxed objects reach a given hit ratio with far
// less cache.
func CacheSweep(c *media.Content, pop Population, sizes []int64) []CacheSweepPoint {
	return CacheSweepParallel(c, pop, sizes, 0)
}

// CacheSweepParallel is CacheSweep with an explicit worker count (0 =
// GOMAXPROCS, 1 = serial). Every (size, mode) cell replays its own cache
// and its own session draw from the population seed, so the cells are
// independent jobs; collection keeps the serial order (sizes outer, modes
// inner).
func CacheSweepParallel(c *media.Content, pop Population, sizes []int64, parallel int) []CacheSweepPoint {
	modes := []Mode{Demuxed, Muxed}
	return runpool.Collect(parallel, len(sizes)*len(modes), func(i int) CacheSweepPoint {
		size, mode := sizes[i/len(modes)], modes[i%len(modes)]
		stats := StaggeredWorkload(NewCache(size), mode, c, pop.Sessions(c), pop.Seed)
		return CacheSweepPoint{CacheBytes: size, Mode: mode, Stats: stats}
	})
}
