// Package cdnsim models the content-distribution motivation of the paper's
// §1: a CDN edge cache between clients and an origin, serving either muxed
// objects (one object per video+audio combination per chunk) or demuxed
// objects (separate video and audio objects per chunk).
//
// It quantifies the two §1 claims:
//
//   - storage: a service with M video and N audio tracks stores M+N track
//     objects demuxed but M×N muxed;
//   - cache hits: with demuxed objects, a user requesting (V1, A2) after
//     another user fetched (V1, A1) still hits the cache for V1's chunks,
//     while a muxed (V1+A2) object misses.
package cdnsim

import (
	"container/list"
	"strconv"

	"demuxabr/internal/faults"
	"demuxabr/internal/media"
)

// Object is a cacheable unit, identified by a key and a size in bytes.
type Object struct {
	Key  string
	Size int64
}

// Stats accumulates cache effectiveness counters.
type Stats struct {
	Requests    int64
	Hits        int64
	Misses      int64
	BytesServed int64 // to clients
	BytesOrigin int64 // fetched from origin (miss traffic)
	Evictions   int64
	// OriginErrors counts failed origin fetches (each faulted attempt).
	OriginErrors int64
	// FailedRequests counts client requests the edge could not serve
	// because the origin kept failing past the edge's retry budget.
	FailedRequests int64
}

// HitRatio returns hits over requests.
func (s Stats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// Plus returns the counter-wise sum of two Stats — the aggregate of two
// disjoint edges (integer addition, so the fold order never matters).
func (s Stats) Plus(o Stats) Stats {
	return Stats{
		Requests:       s.Requests + o.Requests,
		Hits:           s.Hits + o.Hits,
		Misses:         s.Misses + o.Misses,
		BytesServed:    s.BytesServed + o.BytesServed,
		BytesOrigin:    s.BytesOrigin + o.BytesOrigin,
		Evictions:      s.Evictions + o.Evictions,
		OriginErrors:   s.OriginErrors + o.OriginErrors,
		FailedRequests: s.FailedRequests + o.FailedRequests,
	}
}

// ByteHitRatio returns the fraction of served bytes that came from cache.
func (s Stats) ByteHitRatio() float64 {
	if s.BytesServed == 0 {
		return 0
	}
	return 1 - float64(s.BytesOrigin)/float64(s.BytesServed)
}

// Cache is an LRU byte-capacity cache — the CDN edge.
type Cache struct {
	capacity int64
	used     int64
	lru      *list.List // front = most recent
	entries  map[string]*list.Element
	stats    Stats

	// originAttempts tracks, per object key, how many origin fetches have
	// been issued — the attempt number a fault plan's persistence is
	// evaluated against, so transient origin faults clear on retry.
	originAttempts map[string]int
}

type entry struct {
	obj Object
}

// NewCache creates an LRU cache holding up to capacity bytes.
func NewCache(capacity int64) *Cache {
	if capacity <= 0 {
		panic("cdnsim: non-positive cache capacity")
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Used returns the bytes currently cached.
func (c *Cache) Used() int64 { return c.used }

// Contains reports whether an object is currently cached, without touching
// recency or counters.
func (c *Cache) Contains(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// Request serves an object through the cache: a hit refreshes recency; a
// miss charges origin traffic and inserts the object, evicting LRU entries
// as needed. Objects larger than the whole cache are served uncached.
func (c *Cache) Request(obj Object) (hit bool) {
	c.stats.Requests++
	c.stats.BytesServed += obj.Size
	if el, ok := c.entries[obj.Key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	c.stats.BytesOrigin += obj.Size
	if obj.Size > c.capacity {
		return false
	}
	for c.used+obj.Size > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(entry)
		c.used -= ev.obj.Size
		delete(c.entries, ev.obj.Key)
		c.lru.Remove(back)
		c.stats.Evictions++
	}
	c.entries[obj.Key] = c.lru.PushFront(entry{obj: obj})
	c.used += obj.Size
	return false
}

// RequestFaulty serves an object through the cache in front of a fallible
// origin. Hits are served normally — cached bytes do not depend on the
// origin. On a miss the edge fetches from the origin, which fails per the
// fault plan; the edge retries a failed fetch once before giving up and
// failing the client request (no insertion, no bytes served). served
// reports whether the client got the object. A nil plan behaves exactly
// like Request.
func (c *Cache) RequestFaulty(obj Object, trackID string, idx int, plan *faults.Plan) (hit, served bool) {
	if c.Contains(obj.Key) {
		return c.Request(obj), true
	}
	if c.originAttempts == nil {
		c.originAttempts = make(map[string]int)
	}
	attempt := c.originAttempts[obj.Key]
	faulted := 0
	for try := 0; try < 2; try++ {
		_, bad := plan.SegmentFault(trackID, idx, attempt)
		attempt++
		if !bad {
			break
		}
		c.stats.OriginErrors++
		faulted++
	}
	c.originAttempts[obj.Key] = attempt
	if faulted == 2 {
		c.stats.Requests++
		c.stats.Misses++
		c.stats.FailedRequests++
		return false, false
	}
	return c.Request(obj), true
}

// Mode selects muxed or demuxed packaging at the origin.
type Mode int

const (
	// Demuxed stores audio and video as separate objects.
	Demuxed Mode = iota
	// Muxed stores one combined object per combination.
	Muxed
)

// String names the mode.
func (m Mode) String() string {
	if m == Muxed {
		return "muxed"
	}
	return "demuxed"
}

// muxedKey builds the cache key for one chunk of a muxed combination
// object, e.g. "muxed/V1+A1/3".
func muxedKey(video, audio *media.Track, idx int) string {
	return "muxed/" + video.ID + "+" + audio.ID + "/" + strconv.Itoa(idx)
}

// trackKey builds the cache key for one chunk of one demuxed track object,
// e.g. "video/V1/3".
func trackKey(t *media.Track, idx int) string {
	return t.Type.String() + "/" + t.ID + "/" + strconv.Itoa(idx)
}

// RequestChunk serves one playback position's data for a combination
// through the cache in the given mode. It returns the number of cache hits
// (0–1 muxed, 0–2 demuxed).
func RequestChunk(c *Cache, mode Mode, content *media.Content, combo media.Combo, idx int) int {
	hits := 0
	switch mode {
	case Muxed:
		size := content.ChunkSize(combo.Video, idx) + content.ChunkSize(combo.Audio, idx)
		if c.Request(Object{Key: muxedKey(combo.Video, combo.Audio, idx), Size: size}) {
			hits++
		}
	default:
		if c.Request(Object{Key: trackKey(combo.Video, idx), Size: content.ChunkSize(combo.Video, idx)}) {
			hits++
		}
		if c.Request(Object{Key: trackKey(combo.Audio, idx), Size: content.ChunkSize(combo.Audio, idx)}) {
			hits++
		}
	}
	return hits
}

// objectStream is the precomputed request sequence for one cacheable
// object family: key and size per chunk position. Building the keys once
// per workload keeps the per-request loop free of string formatting —
// previously every request Sprintf'd its keys, dominating the allocation
// profile of the cache sweeps.
type objectStream struct {
	id    string // track (or combination) identity, for fault plans
	keys  []string
	sizes []int64
}

// sessionPlan resolves one session to its object streams (audio is nil in
// muxed mode, where one combined object carries both).
type sessionPlan struct {
	video *objectStream
	audio *objectStream
}

// request replays position idx of this session through the cache.
func (p sessionPlan) request(c *Cache, idx int) int {
	hits := 0
	if c.Request(Object{Key: p.video.keys[idx], Size: p.video.sizes[idx]}) {
		hits++
	}
	if p.audio != nil && c.Request(Object{Key: p.audio.keys[idx], Size: p.audio.sizes[idx]}) {
		hits++
	}
	return hits
}

// planSessions precomputes the object streams for a workload. Streams are
// shared between sessions selecting the same track or combination, so the
// key tables cost O(distinct objects × chunks), not O(sessions × chunks).
// The workloads interleave audio and video by shared chunk index, which —
// like muxed packaging itself — assumes aligned A/V timelines; shaped
// per-type timelines are a player-path concern, not a CDN-object one.
func planSessions(mode Mode, c *media.Content, sessions []Session) []sessionPlan {
	n := c.NumChunks()
	plans := make([]sessionPlan, len(sessions))
	if mode == Muxed {
		streams := map[[2]*media.Track]*objectStream{}
		for i, s := range sessions {
			pair := [2]*media.Track{s.Combo.Video, s.Combo.Audio}
			st, ok := streams[pair]
			if !ok {
				st = &objectStream{
					id:    s.Combo.Video.ID + "+" + s.Combo.Audio.ID,
					keys:  make([]string, n),
					sizes: make([]int64, n),
				}
				vs, as := c.TrackSizes(s.Combo.Video), c.TrackSizes(s.Combo.Audio)
				for idx := 0; idx < n; idx++ {
					st.keys[idx] = muxedKey(s.Combo.Video, s.Combo.Audio, idx)
					st.sizes[idx] = vs[idx] + as[idx]
				}
				streams[pair] = st
			}
			plans[i] = sessionPlan{video: st}
		}
		return plans
	}
	streams := map[*media.Track]*objectStream{}
	stream := func(tr *media.Track) *objectStream {
		st, ok := streams[tr]
		if !ok {
			st = &objectStream{id: tr.ID, keys: make([]string, n), sizes: c.TrackSizes(tr)}
			for idx := 0; idx < n; idx++ {
				st.keys[idx] = trackKey(tr, idx)
			}
			streams[tr] = st
		}
		return st
	}
	for i, s := range sessions {
		plans[i] = sessionPlan{video: stream(s.Combo.Video), audio: stream(s.Combo.Audio)}
	}
	return plans
}

// OriginStorage returns the total origin bytes needed to store the content
// in the given mode — the §1 storage argument (M+N tracks vs M×N muxed
// combinations).
func OriginStorage(content *media.Content, mode Mode, combos []media.Combo) int64 {
	var total int64
	switch mode {
	case Muxed:
		for _, cb := range combos {
			total += content.TrackBytes(cb.Video) + content.TrackBytes(cb.Audio)
		}
	default:
		for _, t := range content.Tracks() {
			total += content.TrackBytes(t)
		}
	}
	return total
}

// Session is one simulated viewer: the combination it selects per chunk.
type Session struct {
	// Combo is the viewer's steady selection (language/quality choice).
	Combo media.Combo
}

// Workload replays a set of viewer sessions through a cache and returns the
// stats. Viewers are interleaved chunk-by-chunk, approximating concurrent
// viewing of the same content.
func Workload(c *Cache, mode Mode, content *media.Content, sessions []Session) Stats {
	plans := planSessions(mode, content, sessions)
	n := content.NumChunks()
	for idx := 0; idx < n; idx++ {
		for _, p := range plans {
			p.request(c, idx)
		}
	}
	return c.Stats()
}

// WorkloadFaulty replays the same interleaved workload against an edge
// whose origin fails per the fault plan (keyed by track identity, so the
// same plan drives the origin server and the edge model identically). It
// quantifies a second demuxing benefit under origin instability: a track
// object cached once shields every later session from origin faults on
// that track, while muxed combination objects multiply the exposed
// origin-fetch surface.
func WorkloadFaulty(c *Cache, mode Mode, content *media.Content, sessions []Session, plan *faults.Plan) Stats {
	plans := planSessions(mode, content, sessions)
	n := content.NumChunks()
	for idx := 0; idx < n; idx++ {
		for _, p := range plans {
			c.RequestFaulty(Object{Key: p.video.keys[idx], Size: p.video.sizes[idx]}, p.video.id, idx, plan)
			if p.audio != nil {
				c.RequestFaulty(Object{Key: p.audio.keys[idx], Size: p.audio.sizes[idx]}, p.audio.id, idx, plan)
			}
		}
	}
	return c.Stats()
}
