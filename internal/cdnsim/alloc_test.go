package cdnsim

import (
	"testing"

	"demuxabr/internal/media"
)

// TestPlannedWorkloadMatchesRequestChunk: the precomputed request plans
// must replay exactly the same key/size sequence as the per-request
// RequestChunk path, in both packaging modes.
func TestPlannedWorkloadMatchesRequestChunk(t *testing.T) {
	content := media.DramaShow()
	sessions := []Session{
		{Combo: media.Combo{Video: content.VideoTracks[0], Audio: content.AudioTracks[1]}},
		{Combo: media.Combo{Video: content.VideoTracks[0], Audio: content.AudioTracks[0]}},
		{Combo: media.Combo{Video: content.VideoTracks[3], Audio: content.AudioTracks[1]}},
	}
	for _, mode := range []Mode{Demuxed, Muxed} {
		const capBytes = 64 << 20
		planned := Workload(NewCache(capBytes), mode, content, sessions)
		reference := NewCache(capBytes)
		n := content.NumChunks()
		for idx := 0; idx < n; idx++ {
			for _, s := range sessions {
				RequestChunk(reference, mode, content, s.Combo, idx)
			}
		}
		if planned != reference.Stats() {
			t.Errorf("%s: planned workload stats %+v != per-request stats %+v", mode, planned, reference.Stats())
		}
	}
}

// TestWorkloadSteadyStateAllocs bounds the cache sweep's hot path: with
// the plans built, replaying a chunk position for every session must not
// allocate on cache hits. Before the key tables every request Sprintf'd
// its keys (~3 allocations per request).
func TestWorkloadSteadyStateAllocs(t *testing.T) {
	content := media.DramaShow()
	sessions := []Session{
		{Combo: media.Combo{Video: content.VideoTracks[0], Audio: content.AudioTracks[1]}},
		{Combo: media.Combo{Video: content.VideoTracks[2], Audio: content.AudioTracks[0]}},
	}
	for _, mode := range []Mode{Demuxed, Muxed} {
		cache := NewCache(1 << 30)
		plans := planSessions(mode, content, sessions)
		// Warm: first pass misses and inserts; afterwards every request hits.
		for _, p := range plans {
			p.request(cache, 0)
		}
		allocs := testing.AllocsPerRun(100, func() {
			for _, p := range plans {
				p.request(cache, 0)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: hit path allocates %.2f objects per position, want 0 (request plan regressed)", mode, allocs)
		}
	}
}

// TestCacheSweepParallelMatchesSerial: the fan-out must reproduce the
// serial sweep cell-for-cell.
func TestCacheSweepParallelMatchesSerial(t *testing.T) {
	content := media.DramaShow()
	pop := Population{Viewers: 24, VideoZipf: 1.2, AudioSpread: 3, Seed: 11}
	sizes := []int64{16 << 20, 64 << 20}
	serial := CacheSweepParallel(content, pop, sizes, 1)
	parallel := CacheSweepParallel(content, pop, sizes, 0)
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d points, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}
