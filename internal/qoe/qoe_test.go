package qoe

import (
	"math"
	"testing"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/trace"
)

type fixedJoint struct {
	abr.NopObserver
	combo media.Combo
}

func (f *fixedJoint) Name() string                      { return "fixed" }
func (f *fixedJoint) SelectCombo(abr.State) media.Combo { return f.combo }

func run(t *testing.T, combo media.Combo, rate media.Bps) (*player.Result, *media.Content) {
	t.Helper()
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(rate))
	res, err := player.Run(link, player.Config{Content: c, Model: &fixedJoint{combo: combo}})
	if err != nil {
		t.Fatal(err)
	}
	return res, c
}

func TestMetricsBasics(t *testing.T) {
	c := media.DramaShow()
	combo := media.Combo{Video: c.VideoTracks[2], Audio: c.AudioTracks[1]}
	res, content := run(t, combo, media.Kbps(5000))
	m := Compute(res, content, nil, DefaultWeights())
	if m.StallCount != 0 || m.RebufferTime != 0 {
		t.Errorf("unexpected stalls: %+v", m)
	}
	if m.AvgVideoBitrate != c.VideoTracks[2].AvgBitrate {
		t.Errorf("avg video bitrate = %v, want %v", m.AvgVideoBitrate, c.VideoTracks[2].AvgBitrate)
	}
	if m.VideoSwitches != 0 || m.AudioSwitches != 0 {
		t.Errorf("switches = %d/%d, want 0/0", m.VideoSwitches, m.AudioSwitches)
	}
	if m.DistinctCombos != 1 {
		t.Errorf("distinct combos = %d, want 1", m.DistinctCombos)
	}
	if m.AvgVideoQuality <= 0 {
		t.Errorf("video quality = %v, want > 0 for V3", m.AvgVideoQuality)
	}
	if m.RebufferRatio != 0 {
		t.Errorf("rebuffer ratio = %v, want 0", m.RebufferRatio)
	}
}

func TestRebufferingHurtsScore(t *testing.T) {
	c := media.DramaShow()
	smoothCombo := media.Combo{Video: c.VideoTracks[1], Audio: c.AudioTracks[0]}
	stallCombo := media.Combo{Video: c.VideoTracks[4], Audio: c.AudioTracks[2]}
	resSmooth, content := run(t, smoothCombo, media.Kbps(1200))
	resStall, _ := run(t, stallCombo, media.Kbps(1200))
	mSmooth := Compute(resSmooth, content, nil, DefaultWeights())
	mStall := Compute(resStall, content, nil, DefaultWeights())
	if mStall.RebufferTime == 0 {
		t.Fatal("expected rebuffering in the stalling run")
	}
	if mStall.Score >= mSmooth.Score {
		t.Errorf("stalling score %.2f >= smooth score %.2f", mStall.Score, mSmooth.Score)
	}
}

func TestOffManifestCounting(t *testing.T) {
	c := media.DramaShow()
	// V2+A3 is not in H_sub: every chunk position is off-manifest.
	combo := media.Combo{Video: c.VideoTracks[1], Audio: c.AudioTracks[2]}
	res, content := run(t, combo, media.Kbps(5000))
	m := Compute(res, content, media.HSub(c), DefaultWeights())
	if m.OffManifest != content.NumChunks() {
		t.Errorf("off-manifest = %d, want %d", m.OffManifest, content.NumChunks())
	}
	// V3+A2 is in H_sub: zero.
	res2, _ := run(t, media.Combo{Video: c.VideoTracks[2], Audio: c.AudioTracks[1]}, media.Kbps(5000))
	m2 := Compute(res2, content, media.HSub(c), DefaultWeights())
	if m2.OffManifest != 0 {
		t.Errorf("off-manifest = %d, want 0", m2.OffManifest)
	}
}

func TestHigherQualityScoresHigher(t *testing.T) {
	c := media.DramaShow()
	low, content := run(t, media.Combo{Video: c.VideoTracks[0], Audio: c.AudioTracks[0]}, media.Kbps(8000))
	high, _ := run(t, media.Combo{Video: c.VideoTracks[4], Audio: c.AudioTracks[2]}, media.Kbps(8000))
	mLow := Compute(low, content, nil, DefaultWeights())
	mHigh := Compute(high, content, nil, DefaultWeights())
	if mHigh.Score <= mLow.Score {
		t.Errorf("high-quality score %.2f <= low-quality score %.2f", mHigh.Score, mLow.Score)
	}
	if mLow.AvgVideoQuality != 0 {
		t.Errorf("lowest rung quality = %v, want 0", mLow.AvgVideoQuality)
	}
}

func TestBufferHealthSummary(t *testing.T) {
	c := media.DramaShow()
	combo := media.Combo{Video: c.VideoTracks[1], Audio: c.AudioTracks[0]}
	res, content := run(t, combo, media.Kbps(5000))
	m := Compute(res, content, nil, DefaultWeights())
	if m.BufferHealth.N == 0 {
		t.Fatal("buffer health not computed")
	}
	if m.BufferHealth.Max <= 0 || m.BufferHealth.Max > 36 {
		t.Errorf("buffer health max = %v, want within (0, maxbuffer+chunk]", m.BufferHealth.Max)
	}
	// On a fast link the session should spend most time with a deep buffer.
	if m.BufferHealth.Median < 10 {
		t.Errorf("median min-buffer = %.1f s, want deep on a 5 Mbps link", m.BufferHealth.Median)
	}
}

func TestBufferHealthNearStallBoundary(t *testing.T) {
	c := media.DramaShow()
	// V5+A3 on 1.8 Mbps: lives at the edge, stalls repeatedly.
	combo := media.Combo{Video: c.VideoTracks[4], Audio: c.AudioTracks[2]}
	res, content := run(t, combo, media.Kbps(1800))
	m := Compute(res, content, nil, DefaultWeights())
	if m.StallCount == 0 {
		t.Skip("no stalls; content/link calibration changed")
	}
	if m.BufferHealth.P10 > 5 {
		t.Errorf("p10 min-buffer = %.1f s; a stalling session must live near zero", m.BufferHealth.P10)
	}
}

func TestAudioWeightChangesRanking(t *testing.T) {
	// The §2.1 scoring principle: with audio weighted heavily, a high-audio
	// session outranks a high-video one, and vice versa.
	c := media.DramaShow()
	audioHeavy, content := run(t, media.Combo{Video: c.VideoTracks[1], Audio: c.AudioTracks[2]}, media.Kbps(5000))
	videoHeavy, _ := run(t, media.Combo{Video: c.VideoTracks[4], Audio: c.AudioTracks[0]}, media.Kbps(5000))

	wAudio := DefaultWeights()
	wAudio.AudioWeight = 3
	if Compute(audioHeavy, content, nil, wAudio).Score <= Compute(videoHeavy, content, nil, wAudio).Score {
		t.Error("audio-weighted scoring should prefer the high-audio session")
	}
	wVideo := DefaultWeights()
	wVideo.AudioWeight = 0.1
	if Compute(videoHeavy, content, nil, wVideo).Score <= Compute(audioHeavy, content, nil, wVideo).Score {
		t.Error("video-weighted scoring should prefer the high-video session")
	}
}

func TestSwitchPenaltyCounted(t *testing.T) {
	c := media.DramaShow()
	combo := media.Combo{Video: c.VideoTracks[2], Audio: c.AudioTracks[1]}
	res, content := run(t, combo, media.Kbps(5000))
	noPenalty := DefaultWeights()
	noPenalty.SwitchPenalty = 0
	withPenalty := DefaultWeights()
	withPenalty.SwitchPenalty = 10
	// A fixed model never switches: the two scores must be identical.
	a := Compute(res, content, nil, noPenalty).Score
	b := Compute(res, content, nil, withPenalty).Score
	if a != b {
		t.Errorf("switch penalty charged without switches: %v vs %v", a, b)
	}
}

// shapedQoEContent has two video chunks of very different durations (2 s
// and 18 s) and two uniform 10 s audio chunks: misaligned per-type
// timelines, so Compute takes the duration-weighted branch.
func shapedQoEContent(t *testing.T) *media.Content {
	t.Helper()
	c, err := media.NewContent(media.ContentSpec{
		Name:          "shaped-qoe",
		Duration:      20 * time.Second,
		ChunkDuration: 5 * time.Second,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.DramaAudioLadder(),
		Model:         media.CBRChunkModel(),
		VideoChunks:   []time.Duration{2 * time.Second, 18 * time.Second},
		AudioChunks:   []time.Duration{10 * time.Second, 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDurationWeightedQuality pins the satellite-3 aggregation fix: on
// variable-duration timelines per-chunk metrics weight by each chunk's own
// duration, not by chunk count. A session spending 2 s on the lowest rung
// and 18 s on the top rung is a 90%-top-quality session, not a 50% one.
func TestDurationWeightedQuality(t *testing.T) {
	c := shapedQoEContent(t)
	res := &player.Result{
		Ended:           true,
		ContentDuration: c.Duration,
		Chunks: []player.ChunkDecision{
			{Index: 0, Type: media.Video, Track: c.VideoTracks[0]},
			{Index: 1, Type: media.Video, Track: c.VideoTracks[5]},
			{Index: 0, Type: media.Audio, Track: c.AudioTracks[0]},
			{Index: 1, Type: media.Audio, Track: c.AudioTracks[2]},
		},
	}
	m := Compute(res, c, nil, DefaultWeights())

	uTop := math.Log(float64(c.VideoTracks[5].AvgBitrate) / float64(c.VideoTracks[0].AvgBitrate))
	wantVideo := (0*2 + uTop*18) / 20
	if math.Abs(m.AvgVideoQuality-wantVideo) > 1e-9 {
		t.Errorf("video quality = %v, want duration-weighted %v", m.AvgVideoQuality, wantVideo)
	}
	countWeighted := uTop / 2
	if math.Abs(m.AvgVideoQuality-countWeighted) < 1e-9 {
		t.Error("video quality is count-weighted; chunk durations ignored")
	}
	uATop := math.Log(float64(c.AudioTracks[2].AvgBitrate) / float64(c.AudioTracks[0].AvgBitrate))
	if wantAudio := uATop / 2; math.Abs(m.AvgAudioQuality-wantAudio) > 1e-9 {
		t.Errorf("audio quality = %v, want %v (equal 10 s chunks)", m.AvgAudioQuality, wantAudio)
	}
	// Bitrate averages weight the same way.
	wantKbps := (float64(c.VideoTracks[0].AvgBitrate)*2 + float64(c.VideoTracks[5].AvgBitrate)*18) / 20
	if math.Abs(float64(m.AvgVideoBitrate)-wantKbps) > 1 {
		t.Errorf("avg video bitrate = %v, want duration-weighted %.0f", m.AvgVideoBitrate, wantKbps)
	}
}

// TestOffManifestMidpointPairing pins the misaligned off-manifest rule: the
// audio track paired with a video chunk is the one covering the video
// chunk's midpoint. Video chunk 1 spans [2 s, 20 s) — midpoint 11 s — which
// audio chunk 1 covers.
func TestOffManifestMidpointPairing(t *testing.T) {
	c := shapedQoEContent(t)
	allowed := []media.Combo{
		{Video: c.VideoTracks[0], Audio: c.AudioTracks[0]},
		{Video: c.VideoTracks[5], Audio: c.AudioTracks[2]},
	}
	res := &player.Result{
		Ended:           true,
		ContentDuration: c.Duration,
		Chunks: []player.ChunkDecision{
			{Index: 0, Type: media.Video, Track: c.VideoTracks[0]},
			{Index: 1, Type: media.Video, Track: c.VideoTracks[5]},
			// Audio chunk 0 covers video chunk 0's midpoint (1 s): V1+A1 allowed.
			{Index: 0, Type: media.Audio, Track: c.AudioTracks[0]},
			// Audio chunk 1 covers video chunk 1's midpoint (11 s): V6+A1 NOT allowed.
			{Index: 1, Type: media.Audio, Track: c.AudioTracks[0]},
		},
	}
	m := Compute(res, c, allowed, DefaultWeights())
	if m.OffManifest != 1 {
		t.Errorf("off-manifest = %d, want exactly the V6+A1 midpoint pairing", m.OffManifest)
	}
}
