package qoe

import (
	"demuxabr/internal/stats"
)

// Jain computes Jain's fairness index (Σx)² / (n·Σx²) over non-negative
// allocations: 1 when every session gets the same share, approaching 1/n
// when one session takes everything. Degenerate fleets are defined as
// perfectly fair: an empty or single-session fleet has no one to be unfair
// to, and an all-zero fleet starves everyone equally. Negative inputs are
// clamped to zero — an allocation cannot be negative, and letting one
// cancel mass in the numerator would push the index below its 1/n floor —
// so the result always lies in [1/n, 1].
func Jain(xs []float64) float64 {
	if len(xs) <= 1 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq <= 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// FleetMetrics aggregates per-session metrics across a co-simulated fleet:
// the distribution of session outcomes, and Jain's fairness index on the
// duration-weighted video bitrate — the allocation the shared bottleneck
// actually hands out.
type FleetMetrics struct {
	// Sessions is the fleet size.
	Sessions int
	// JainVideoKbps is Jain's index over per-session duration-weighted
	// video bitrates.
	JainVideoKbps float64
	// Score / VideoKbps / AudioKbps / RebufferSeconds / StartupSeconds
	// summarize the per-session distributions.
	Score           stats.Summary
	VideoKbps       stats.Summary
	AudioKbps       stats.Summary
	RebufferSeconds stats.Summary
	StartupSeconds  stats.Summary
	// Live summarizes live-session latency accounting; nil when no session
	// ran in live mode (the live-off equivalence contract).
	Live *FleetLiveMetrics
}

// FleetLiveMetrics aggregates the latency-target accounting across a live
// fleet. Only merge-order-independent quantities live here (a histogram and
// an integer total), so sharded and exact aggregation agree exactly.
type FleetLiveMetrics struct {
	// LatencySeconds is the distribution of per-session mean live-edge
	// latency.
	LatencySeconds stats.Summary
	// Resyncs totals live-edge resync jumps across the fleet.
	Resyncs int64
}

// Sketch ranges for streaming fleet aggregation. Each range covers the
// metric's physical domain (values outside are clamped into edge bins, see
// stats.Sketch); bin counts are chosen so the documented quantile error is
// far below what any fleet comparison in the experiments cares about.
const (
	scoreSketchHi   = 10    // QoE scores live in single digits
	scoreSketchBins = 4000  // 2.5e-3 score resolution
	kbpsSketchHi    = 20000 // above any ladder rung in the corpus
	kbpsSketchBins  = 8000  // 2.5 kbps resolution
	rebufSketchHi   = 3600  // an hour of stalling, far past any deadline
	rebufSketchBins = 7200  // 0.5 s resolution
	startSketchHi   = 300   // startup delays are seconds, not minutes
	startSketchBins = 6000  // 50 ms resolution
	latSketchHi     = 120   // live-edge latency caps near the resync bound
	latSketchBins   = 4800  // 25 ms resolution
)

// FleetAccumulator streams per-session metrics into mergeable sketches so a
// sharded fleet can aggregate in O(bins) memory instead of retaining every
// Result. Merge order does not affect any output (see stats.Sketch); Jain's
// index needs float partial sums and is therefore handled separately by
// JainPartial, folded in a deterministic order by the caller.
type FleetAccumulator struct {
	Score          *stats.Sketch
	ScoreCompleted *stats.Sketch
	Video          *stats.Sketch
	Audio          *stats.Sketch
	Rebuffer       *stats.Sketch
	Startup        *stats.Sketch
	// Latency collects per-session mean live-edge latency; its N doubles as
	// the live-session count (zero for VOD fleets). Resyncs totals resync
	// jumps.
	Latency *stats.Sketch
	Resyncs int64
}

// NewFleetAccumulator returns an empty accumulator with the standard fleet
// sketch configuration (accumulators must share it to merge).
func NewFleetAccumulator() *FleetAccumulator {
	return &FleetAccumulator{
		Score:          stats.NewSketch(0, scoreSketchHi, scoreSketchBins),
		ScoreCompleted: stats.NewSketch(0, scoreSketchHi, scoreSketchBins),
		Video:          stats.NewSketch(0, kbpsSketchHi, kbpsSketchBins),
		Audio:          stats.NewSketch(0, kbpsSketchHi, kbpsSketchBins),
		Rebuffer:       stats.NewSketch(0, rebufSketchHi, rebufSketchBins),
		Startup:        stats.NewSketch(0, startSketchHi, startSketchBins),
		Latency:        stats.NewSketch(0, latSketchHi, latSketchBins),
	}
}

// Add records one finished session. completed distinguishes sessions that
// played to the end from aborted ones (the qoe_score_completed split the
// fleet report carries).
func (a *FleetAccumulator) Add(m Metrics, completed bool) {
	a.Score.Add(m.Score)
	if completed {
		a.ScoreCompleted.Add(m.Score)
	}
	a.Video.Add(m.AvgVideoBitrate.Kbps())
	a.Audio.Add(m.AvgAudioBitrate.Kbps())
	a.Rebuffer.Add(m.RebufferTime.Seconds())
	a.Startup.Add(m.StartupDelay.Seconds())
	if m.Live != nil {
		a.Latency.Add(m.Live.MeanLatency.Seconds())
		a.Resyncs += int64(m.Live.Resyncs)
	}
}

// Merge folds another shard's accumulator into a.
func (a *FleetAccumulator) Merge(o *FleetAccumulator) {
	a.Score.Merge(o.Score)
	a.ScoreCompleted.Merge(o.ScoreCompleted)
	a.Video.Merge(o.Video)
	a.Audio.Merge(o.Audio)
	a.Rebuffer.Merge(o.Rebuffer)
	a.Startup.Merge(o.Startup)
	a.Latency.Merge(o.Latency)
	a.Resyncs += o.Resyncs
}

// Sessions returns the number of sessions recorded.
func (a *FleetAccumulator) Sessions() int { return int(a.Score.N()) }

// FleetMetrics renders the accumulated distributions. The Jain index over
// video bitrates cannot be recovered from a histogram, so the caller
// supplies it from deterministically-folded JainPartials.
func (a *FleetAccumulator) FleetMetrics(jainVideo float64) FleetMetrics {
	f := FleetMetrics{
		Sessions:        a.Sessions(),
		JainVideoKbps:   jainVideo,
		Score:           a.Score.Summary(),
		VideoKbps:       a.Video.Summary(),
		AudioKbps:       a.Audio.Summary(),
		RebufferSeconds: a.Rebuffer.Summary(),
		StartupSeconds:  a.Startup.Summary(),
	}
	if a.Latency.N() > 0 {
		f.Live = &FleetLiveMetrics{LatencySeconds: a.Latency.Summary(), Resyncs: a.Resyncs}
	}
	return f
}

// JainPartial accumulates the sufficient statistics for Jain's fairness
// index. Float addition is not associative, so partials must be folded in a
// fixed order for deterministic output: the fleet keeps one partial per
// contention cell and folds them in cell-index order regardless of how many
// shards executed the cells.
type JainPartial struct {
	Sum   float64
	SumSq float64
	N     int
}

// Observe records one allocation (negative values clamp to zero, matching
// Jain).
func (p *JainPartial) Observe(x float64) {
	if x < 0 {
		x = 0
	}
	p.Sum += x
	p.SumSq += x * x
	p.N++
}

// Plus returns the fold of two partials.
func (p JainPartial) Plus(o JainPartial) JainPartial {
	return JainPartial{Sum: p.Sum + o.Sum, SumSq: p.SumSq + o.SumSq, N: p.N + o.N}
}

// Index evaluates Jain's index with the same degenerate-case conventions as
// Jain: fleets of ≤ 1 session or with no allocated mass are perfectly fair.
func (p JainPartial) Index() float64 {
	if p.N <= 1 || p.SumSq <= 0 {
		return 1
	}
	return p.Sum * p.Sum / (float64(p.N) * p.SumSq)
}

// ComputeFleet aggregates one fleet's per-session metrics.
func ComputeFleet(ms []Metrics) FleetMetrics {
	f := FleetMetrics{Sessions: len(ms)}
	if len(ms) == 0 {
		f.JainVideoKbps = 1
		return f
	}
	score := make([]float64, len(ms))
	video := make([]float64, len(ms))
	audio := make([]float64, len(ms))
	rebuf := make([]float64, len(ms))
	start := make([]float64, len(ms))
	var lat []float64
	var resyncs int64
	for i, m := range ms {
		score[i] = m.Score
		video[i] = m.AvgVideoBitrate.Kbps()
		audio[i] = m.AvgAudioBitrate.Kbps()
		rebuf[i] = m.RebufferTime.Seconds()
		start[i] = m.StartupDelay.Seconds()
		if m.Live != nil {
			lat = append(lat, m.Live.MeanLatency.Seconds())
			resyncs += int64(m.Live.Resyncs)
		}
	}
	f.JainVideoKbps = Jain(video)
	f.Score = stats.Summarize(score)
	f.VideoKbps = stats.Summarize(video)
	f.AudioKbps = stats.Summarize(audio)
	f.RebufferSeconds = stats.Summarize(rebuf)
	f.StartupSeconds = stats.Summarize(start)
	if len(lat) > 0 {
		f.Live = &FleetLiveMetrics{LatencySeconds: stats.Summarize(lat), Resyncs: resyncs}
	}
	return f
}
