package qoe

import (
	"demuxabr/internal/stats"
)

// Jain computes Jain's fairness index (Σx)² / (n·Σx²) over non-negative
// allocations: 1 when every session gets the same share, approaching 1/n
// when one session takes everything. Degenerate fleets are defined as
// perfectly fair: an empty or single-session fleet has no one to be unfair
// to, and an all-zero fleet starves everyone equally. Negative inputs are
// clamped to zero — an allocation cannot be negative, and letting one
// cancel mass in the numerator would push the index below its 1/n floor —
// so the result always lies in [1/n, 1].
func Jain(xs []float64) float64 {
	if len(xs) <= 1 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq <= 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// FleetMetrics aggregates per-session metrics across a co-simulated fleet:
// the distribution of session outcomes, and Jain's fairness index on the
// duration-weighted video bitrate — the allocation the shared bottleneck
// actually hands out.
type FleetMetrics struct {
	// Sessions is the fleet size.
	Sessions int
	// JainVideoKbps is Jain's index over per-session duration-weighted
	// video bitrates.
	JainVideoKbps float64
	// Score / VideoKbps / AudioKbps / RebufferSeconds / StartupSeconds
	// summarize the per-session distributions.
	Score           stats.Summary
	VideoKbps       stats.Summary
	AudioKbps       stats.Summary
	RebufferSeconds stats.Summary
	StartupSeconds  stats.Summary
}

// ComputeFleet aggregates one fleet's per-session metrics.
func ComputeFleet(ms []Metrics) FleetMetrics {
	f := FleetMetrics{Sessions: len(ms)}
	if len(ms) == 0 {
		f.JainVideoKbps = 1
		return f
	}
	score := make([]float64, len(ms))
	video := make([]float64, len(ms))
	audio := make([]float64, len(ms))
	rebuf := make([]float64, len(ms))
	start := make([]float64, len(ms))
	for i, m := range ms {
		score[i] = m.Score
		video[i] = m.AvgVideoBitrate.Kbps()
		audio[i] = m.AvgAudioBitrate.Kbps()
		rebuf[i] = m.RebufferTime.Seconds()
		start[i] = m.StartupDelay.Seconds()
	}
	f.JainVideoKbps = Jain(video)
	f.Score = stats.Summarize(score)
	f.VideoKbps = stats.Summarize(video)
	f.AudioKbps = stats.Summarize(audio)
	f.RebufferSeconds = stats.Summarize(rebuf)
	f.StartupSeconds = stats.Summarize(start)
	return f
}
