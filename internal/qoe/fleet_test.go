package qoe

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"demuxabr/internal/media"
)

func TestJainEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"single session", []float64{1200}, 1},
		{"all-zero bitrates", []float64{0, 0, 0, 0}, 1},
		{"perfectly fair", []float64{5, 5, 5, 5}, 1},
		{"known skew", []float64{1, 1, 1, 3}, 0.75}, // 6² / (4·12)
		{"one takes all", []float64{10, 0, 0, 0}, 0.25},
	}
	for _, tc := range cases {
		if got := Jain(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Jain = %g, want %g", tc.name, got, tc.want)
		}
	}
}

func TestJainBounds(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	j := Jain(xs)
	if j <= 1.0/float64(len(xs)) || j > 1 {
		t.Fatalf("Jain = %g outside (1/n, 1]", j)
	}
}

func TestComputeFleetDistributions(t *testing.T) {
	ms := []Metrics{
		{AvgVideoBitrate: media.Kbps(1000), AvgAudioBitrate: media.Kbps(96), Score: 2, RebufferTime: 0, StartupDelay: 2 * time.Second},
		{AvgVideoBitrate: media.Kbps(2000), AvgAudioBitrate: media.Kbps(96), Score: 4, RebufferTime: 3 * time.Second, StartupDelay: 4 * time.Second},
		{AvgVideoBitrate: media.Kbps(3000), AvgAudioBitrate: media.Kbps(192), Score: 6, RebufferTime: 6 * time.Second, StartupDelay: 6 * time.Second},
	}
	f := ComputeFleet(ms)
	if f.Sessions != 3 {
		t.Fatalf("Sessions = %d, want 3", f.Sessions)
	}
	// Jain over {1000, 2000, 3000}: 6000² / (3·14e6) = 6/7.
	if want := 36e6 / (3 * 14e6); math.Abs(f.JainVideoKbps-want) > 1e-12 {
		t.Errorf("JainVideoKbps = %g, want %g", f.JainVideoKbps, want)
	}
	if f.VideoKbps.Median != 2000 || f.VideoKbps.Min != 1000 || f.VideoKbps.Max != 3000 {
		t.Errorf("VideoKbps summary = %+v", f.VideoKbps)
	}
	if f.Score.Mean != 4 {
		t.Errorf("Score.Mean = %g, want 4", f.Score.Mean)
	}
	if f.RebufferSeconds.Max != 6 || f.StartupSeconds.Min != 2 {
		t.Errorf("rebuffer/startup summaries = %+v / %+v", f.RebufferSeconds, f.StartupSeconds)
	}
	// Percentile interpolation on the 3-point distribution: P90 of
	// {1000, 2000, 3000} is 2800 (linear interpolation at rank 1.8).
	if math.Abs(f.VideoKbps.P90-2800) > 1e-9 {
		t.Errorf("VideoKbps.P90 = %g, want 2800", f.VideoKbps.P90)
	}
}

func TestComputeFleetEmpty(t *testing.T) {
	f := ComputeFleet(nil)
	if f.Sessions != 0 || f.JainVideoKbps != 1 {
		t.Fatalf("empty fleet: %+v", f)
	}
}

// TestJainNegativeInputsClamped is the regression test for the Jain contract:
// a negative input (e.g. a corrupted bitrate) must clamp to zero rather than
// cancel mass in the numerator and push the index below its 1/n floor.
func TestJainNegativeInputsClamped(t *testing.T) {
	// Pre-fix: (1+1-1)² / (3·3) = 1/9 < 1/3 — below the documented floor.
	if got, want := Jain([]float64{1, 1, -1}), Jain([]float64{1, 1, 0}); math.Abs(got-want) > 1e-12 {
		t.Errorf("Jain{1,1,-1} = %g, want %g (negative clamped to zero)", got, want)
	}
	// Property: over seeded random inputs with negatives mixed in, the
	// result always lies in [1/n, 1].
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*2000 - 500 // ~25% negative
		}
		j := Jain(xs)
		if j < 1/float64(n)-1e-12 || j > 1+1e-12 {
			t.Fatalf("trial %d: Jain(%v) = %g outside [1/%d, 1]", trial, xs, j, n)
		}
	}
}
