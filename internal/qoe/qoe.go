// Package qoe computes quality-of-experience metrics from a streaming
// session result: the quantities the paper reports (rebuffering time, stall
// counts, selected-track quality, buffer imbalance, selection churn,
// off-manifest selections) and a composite score in the style of Yin et
// al. [25] extended with an audio term.
package qoe

import (
	"math"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/player"
	"demuxabr/internal/stats"
)

// Weights parameterizes the composite score.
type Weights struct {
	// AudioWeight scales audio quality relative to video quality.
	AudioWeight float64
	// SwitchPenalty is charged per unit of quality changed across
	// consecutive chunks (both types).
	SwitchPenalty float64
	// RebufferPenalty is charged per second of rebuffering.
	RebufferPenalty float64
	// StartupPenalty is charged per second of startup delay.
	StartupPenalty float64
}

// DefaultWeights follows the common control-theoretic QoE instantiation:
// full audio weight, unit switch penalty, a heavy rebuffer penalty and a
// light startup penalty.
func DefaultWeights() Weights {
	return Weights{AudioWeight: 1, SwitchPenalty: 1, RebufferPenalty: 4.3, StartupPenalty: 1}
}

// Metrics summarizes one session.
type Metrics struct {
	// AvgVideoBitrate / AvgAudioBitrate are duration-weighted averages of
	// the selected tracks' average bitrates.
	AvgVideoBitrate media.Bps
	AvgAudioBitrate media.Bps
	// AvgVideoQuality / AvgAudioQuality are duration-weighted mean ladder
	// utilities (log bitrate relative to the lowest rung; 0 = lowest).
	AvgVideoQuality float64
	AvgAudioQuality float64
	// VideoSwitches / AudioSwitches count track changes between consecutive
	// chunk positions.
	VideoSwitches int
	AudioSwitches int
	// DistinctCombos counts the distinct audio/video pairings used.
	DistinctCombos int
	// OffManifest counts chunk positions whose pairing is outside the
	// allowed list (zero when no list is supplied).
	OffManifest int
	// StallCount / RebufferTime / RebufferRatio describe stalls after
	// startup. RebufferRatio is rebuffer time over (content + rebuffer).
	StallCount    int
	RebufferTime  time.Duration
	RebufferRatio float64
	// StartupDelay is the time to first frame.
	StartupDelay time.Duration
	// MaxImbalance / MeanImbalance summarize |audio − video| buffer skew.
	MaxImbalance  time.Duration
	MeanImbalance time.Duration
	// BufferHealth summarizes the min(audio, video) buffer level in
	// seconds across the timeline — low percentiles close to zero mean the
	// session lived near the stall boundary.
	BufferHealth stats.Summary
	// Score is the composite QoE (higher is better).
	Score float64
	// Live carries latency-target metrics for live sessions; nil for VOD
	// (the live-off equivalence contract).
	Live *LiveMetrics
}

// LiveMetrics summarizes a live session's latency-target controller: how
// close the session held to its target, and what catch-up cost (rate
// changes, resync jumps, skipped media) it paid to do so.
type LiveMetrics struct {
	// LatencyTarget echoes the configured target; JoinLatency is the
	// latency at join.
	LatencyTarget time.Duration
	JoinLatency   time.Duration
	// MeanLatency, MaxLatency and FinalLatency summarize the sampled
	// live-edge latency (FinalLatency: the last sample while the stream was
	// still producing — steady-state drift).
	MeanLatency  time.Duration
	MaxLatency   time.Duration
	FinalLatency time.Duration
	// RateChanges counts catch-up controller adjustments; CatchupTime and
	// SlowdownTime the played time above and below 1.0x; MeanRate the
	// time-weighted mean playback rate.
	RateChanges  int
	CatchupTime  time.Duration
	SlowdownTime time.Duration
	MeanRate     float64
	// Resyncs counts live-edge resync jumps; SkippedTime the media they
	// discarded.
	Resyncs     int
	SkippedTime time.Duration
}

// utility returns the log-relative quality of a track within its ladder.
func utility(l media.Ladder, t *media.Track) float64 {
	return math.Log(float64(t.AvgBitrate) / float64(l[0].AvgBitrate))
}

// Compute derives metrics for a finished session. allowed may be nil when
// no server-side combination list applies.
func Compute(res *player.Result, content *media.Content, allowed []media.Combo, w Weights) Metrics {
	var m Metrics
	// Each type's average weights by that type's own chunk durations:
	// passing the video timeline's durations for audio would mis-weight
	// every chunk on shaped content (and over-count on misaligned counts).
	m.AvgVideoBitrate = res.AvgSelectedBitrate(media.Video, func(i int) time.Duration {
		return content.ChunkDurationOf(media.Video, i)
	})
	m.AvgAudioBitrate = res.AvgSelectedBitrate(media.Audio, func(i int) time.Duration {
		return content.ChunkDurationOf(media.Audio, i)
	})
	m.VideoSwitches = res.Switches(media.Video)
	m.AudioSwitches = res.Switches(media.Audio)
	m.DistinctCombos = len(res.CombosSelected())
	m.StallCount = len(res.Stalls)
	m.RebufferTime = res.RebufferTime()
	if total := content.Duration + m.RebufferTime; total > 0 {
		m.RebufferRatio = m.RebufferTime.Seconds() / total.Seconds()
	}
	m.StartupDelay = res.StartupDelay
	m.MaxImbalance = res.MaxBufferImbalance()
	if ls := res.Live; ls != nil {
		m.Live = &LiveMetrics{
			LatencyTarget: ls.LatencyTarget,
			JoinLatency:   ls.JoinLatency,
			MeanLatency:   ls.MeanLatency,
			MaxLatency:    ls.MaxLatency,
			FinalLatency:  ls.FinalLatency,
			RateChanges:   ls.RateChanges,
			CatchupTime:   ls.CatchupTime,
			SlowdownTime:  ls.SlowdownTime,
			MeanRate:      ls.MeanRate,
			Resyncs:       ls.Resyncs,
			SkippedTime:   ls.SkippedTime,
		}
	}

	var imbSum time.Duration
	minBuffers := make([]float64, 0, len(res.Timeline))
	for _, s := range res.Timeline {
		d := s.AudioBuffer - s.VideoBuffer
		if d < 0 {
			d = -d
		}
		imbSum += d
		lo := s.VideoBuffer
		if s.AudioBuffer < lo {
			lo = s.AudioBuffer
		}
		minBuffers = append(minBuffers, lo.Seconds())
	}
	if n := len(res.Timeline); n > 0 {
		m.MeanImbalance = imbSum / time.Duration(n)
		m.BufferHealth = stats.Summarize(minBuffers)
	}

	// Duration-weighted utilities and switch magnitudes. The aligned branch
	// is the pre-shaping computation, kept verbatim so uniform (and
	// aligned-shaped) content produces bit-identical metrics; misaligned
	// per-type timelines take the typed branch below, where each type is
	// weighted by its own chunk durations and pairing goes through time
	// overlap instead of a shared index.
	var seconds, switchMag float64
	if content.Aligned() {
		var vQual, aQual float64
		var prev [2]*media.Track
		byIdx := map[int][2]*media.Track{}
		maxIdx := -1
		for _, ch := range res.Chunks {
			e := byIdx[ch.Index]
			e[ch.Type] = ch.Track
			byIdx[ch.Index] = e
			if ch.Index > maxIdx {
				maxIdx = ch.Index
			}
		}
		for i := 0; i <= maxIdx; i++ {
			pair := byIdx[i]
			v, a := pair[media.Video], pair[media.Audio]
			if v == nil || a == nil {
				continue
			}
			d := content.ChunkDurationAt(i).Seconds()
			vQual += utility(content.VideoTracks, v) * d
			aQual += utility(content.AudioTracks, a) * d
			seconds += d
			if prev[media.Video] != nil {
				switchMag += math.Abs(utility(content.VideoTracks, v) - utility(content.VideoTracks, prev[media.Video]))
				switchMag += math.Abs(utility(content.AudioTracks, a) - utility(content.AudioTracks, prev[media.Audio]))
			}
			prev = pair
			if len(allowed) > 0 && !comboAllowed(allowed, v, a) {
				m.OffManifest++
			}
		}
		if seconds > 0 {
			m.AvgVideoQuality = vQual / seconds
			m.AvgAudioQuality = aQual / seconds
		}
	} else {
		sel := [2]map[int]*media.Track{{}, {}}
		maxIdx := [2]int{-1, -1}
		for _, ch := range res.Chunks {
			sel[ch.Type][ch.Index] = ch.Track
			if ch.Index > maxIdx[ch.Type] {
				maxIdx[ch.Type] = ch.Index
			}
		}
		for _, t := range []media.Type{media.Video, media.Audio} {
			ladder := content.VideoTracks
			if t == media.Audio {
				ladder = content.AudioTracks
			}
			var qual, secs float64
			var prev *media.Track
			for i := 0; i <= maxIdx[t]; i++ {
				tr := sel[t][i]
				if tr == nil {
					continue
				}
				d := content.ChunkDurationOf(t, i).Seconds()
				qual += utility(ladder, tr) * d
				secs += d
				if prev != nil {
					switchMag += math.Abs(utility(ladder, tr) - utility(ladder, prev))
				}
				prev = tr
			}
			if secs > 0 {
				if t == media.Video {
					m.AvgVideoQuality = qual / secs
					// The video timeline drives the playback clock; its
					// covered seconds normalize the composite score.
					seconds = secs
				} else {
					m.AvgAudioQuality = qual / secs
				}
			}
		}
		// Off-manifest pairings: the audio actually playing during a video
		// chunk is the one covering its midpoint.
		if len(allowed) > 0 {
			for i := 0; i <= maxIdx[media.Video]; i++ {
				v := sel[media.Video][i]
				if v == nil {
					continue
				}
				mid := content.ChunkStartOf(media.Video, i) + content.ChunkDurationOf(media.Video, i)/2
				a := sel[media.Audio][content.ChunkIndexAt(media.Audio, mid)]
				if a != nil && !comboAllowed(allowed, v, a) {
					m.OffManifest++
				}
			}
		}
	}

	m.Score = m.AvgVideoQuality + w.AudioWeight*m.AvgAudioQuality -
		w.SwitchPenalty*switchMag/math.Max(seconds/60, 1) - // switch churn per minute
		w.RebufferPenalty*m.RebufferTime.Seconds()/math.Max(seconds, 1)*60 - // rebuffer per minute
		w.StartupPenalty*m.StartupDelay.Seconds()/math.Max(seconds, 1)*60
	return m
}

func comboAllowed(allowed []media.Combo, v, a *media.Track) bool {
	for _, c := range allowed {
		// Compare by ID: clients that reconstruct tracks from manifests
		// (§4.1 media-playlist recovery) hold distinct Track values for the
		// same underlying track.
		if c.Video.ID == v.ID && c.Audio.ID == a.ID {
			return true
		}
	}
	return false
}
