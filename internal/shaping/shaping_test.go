package shaping_test

import (
	"bytes"
	"testing"
	"time"

	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
	"demuxabr/internal/shaping"
)

func baseSpec() media.ContentSpec {
	return media.ContentSpec{
		Name:          "drama-show",
		Duration:      media.DramaDuration,
		ChunkDuration: media.DramaChunkDuration,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.DramaAudioLadder(),
		Model:         media.DefaultChunkModel(),
	}
}

// TestShapingDeterminism is the check.sh shaping-determinism gate: the same
// seed must produce a byte-identical plan, and the worker count of the
// ladder search must not matter.
func TestShapingDeterminism(t *testing.T) {
	spec := baseSpec()
	serial, err := shaping.Optimize(spec, shaping.Config{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	again, err := shaping.Optimize(spec, shaping.Config{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := shaping.Optimize(spec, shaping.Config{Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Fingerprint(), again.Fingerprint()) {
		t.Fatal("same seed produced different plans across runs")
	}
	if !bytes.Equal(serial.Fingerprint(), parallel.Fingerprint()) {
		t.Fatal("plan differs between -parallel 1 and -parallel 8")
	}
	other, err := shaping.Optimize(spec, shaping.Config{Seed: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(serial.Fingerprint(), other.Fingerprint()) {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestBoundaryInvariants checks the boundary-table properties across seeds:
// strictly positive grid-aligned durations within the per-type bounds,
// exact coverage of the title duration, and deliberate A/V misalignment.
func TestBoundaryInvariants(t *testing.T) {
	spec := baseSpec()
	for seed := int64(0); seed < 6; seed++ {
		plan, err := shaping.Optimize(spec, shaping.Config{Seed: seed, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		check := func(name string, durs []time.Duration, min, max time.Duration) {
			if len(durs) == 0 {
				t.Fatalf("seed %d: %s: empty chunk table", seed, name)
			}
			var sum time.Duration
			for i, d := range durs {
				if d <= 0 {
					t.Fatalf("seed %d: %s chunk %d: non-positive duration %v", seed, name, i, d)
				}
				if d%(500*time.Millisecond) != 0 {
					t.Fatalf("seed %d: %s chunk %d: %v not grid-aligned", seed, name, i, d)
				}
				if d > max {
					t.Fatalf("seed %d: %s chunk %d: %v above max %v", seed, name, i, d, max)
				}
				if d < min && i != len(durs)-1 {
					t.Fatalf("seed %d: %s chunk %d: %v below min %v", seed, name, i, d, min)
				}
				sum += d
			}
			if sum != spec.Duration {
				t.Fatalf("seed %d: %s chunks sum to %v, want %v", seed, name, sum, spec.Duration)
			}
		}
		check("video", plan.VideoChunks, 2*time.Second, 8*time.Second)
		check("audio", plan.AudioChunks, 3*time.Second, 9*time.Second)

		c, err := media.NewContent(plan.Spec(spec))
		if err != nil {
			t.Fatalf("seed %d: shaped content: %v", seed, err)
		}
		if c.Aligned() {
			t.Fatalf("seed %d: shaped A/V timelines are aligned; shaping must diverge them", seed)
		}
		for _, typ := range []media.Type{media.Video, media.Audio} {
			tl := c.ChunkTimeline(typ)
			if tl[0] != 0 || tl[len(tl)-1] != c.Duration {
				t.Fatalf("seed %d: %v timeline spans [%v, %v], want [0, %v]", seed, typ, tl[0], tl[len(tl)-1], c.Duration)
			}
			for i := 1; i < len(tl); i++ {
				if tl[i] <= tl[i-1] {
					t.Fatalf("seed %d: %v timeline not strictly monotone at %d", seed, typ, i)
				}
			}
		}
	}
}

// TestPlanRoundTrip writes a shaped title through both manifest formats and
// checks the parsed timelines reproduce the plan exactly.
func TestPlanRoundTrip(t *testing.T) {
	spec := baseSpec()
	plan, err := shaping.Optimize(spec, shaping.Config{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := media.MustNewContent(plan.Spec(spec))

	want := map[media.Type][]time.Duration{
		media.Video: plan.VideoChunks,
		media.Audio: plan.AudioChunks,
	}

	// HLS: per-segment EXTINF must reproduce the table, and TARGETDURATION
	// must cover the longest actual segment (RFC 8216 §4.3.3.1).
	for _, typ := range []media.Type{media.Video, media.Audio} {
		tracks := c.VideoTracks
		if typ == media.Audio {
			tracks = c.AudioTracks
		}
		p := hls.GenerateMedia(c, tracks[0], hls.SegmentFiles, false)
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		parsed, err := hls.ParseMedia(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: reparse: %v", typ, err)
		}
		if got, want := len(parsed.Segments), len(want[typ]); got != want {
			t.Fatalf("%v: %d HLS segments, want %d", typ, got, want)
		}
		var max time.Duration
		for i, s := range parsed.Segments {
			if s.Duration != want[typ][i] {
				t.Fatalf("%v: HLS segment %d duration %v, want %v", typ, i, s.Duration, want[typ][i])
			}
			if s.Duration > max {
				max = s.Duration
			}
		}
		if parsed.TargetDuration < max {
			t.Fatalf("%v: TARGETDURATION %v below max segment %v", typ, parsed.TargetDuration, max)
		}
	}

	// DASH: the SegmentTimeline expansion must reproduce the table.
	var buf bytes.Buffer
	if err := dash.Generate(c).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	mpd, err := dash.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range mpd.Periods[0].AdaptationSets {
		typ := media.Video
		if set.ContentType == "audio" {
			typ = media.Audio
		}
		if set.SegmentTemplate.Duration != 0 {
			t.Fatalf("%s: shaped timeline still declares @duration=%d", set.ContentType, set.SegmentTemplate.Duration)
		}
		durs, err := set.SegmentTemplate.SegmentDurations(c.Duration)
		if err != nil {
			t.Fatal(err)
		}
		if len(durs) != len(want[typ]) {
			t.Fatalf("%s: %d DASH segments, want %d", set.ContentType, len(durs), len(want[typ]))
		}
		for i, d := range durs {
			if d != want[typ][i] {
				t.Fatalf("%s: DASH segment %d duration %v, want %v", set.ContentType, i, d, want[typ][i])
			}
		}
	}
}

// TestLadderSearch checks the searched ladder's shape: the authored rung
// count, strictly ascending bitrates, template metadata carried over.
func TestLadderSearch(t *testing.T) {
	spec := baseSpec()
	plan, err := shaping.Optimize(spec, shaping.Config{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	l := plan.VideoLadder
	if len(l) != len(spec.VideoTracks) {
		t.Fatalf("ladder has %d rungs, want %d", len(l), len(spec.VideoTracks))
	}
	for i, tr := range l {
		if tr.Type != media.Video {
			t.Fatalf("rung %d has type %v", i, tr.Type)
		}
		if i > 0 && tr.AvgBitrate <= l[i-1].AvgBitrate {
			t.Fatalf("ladder not strictly ascending at rung %d: %v after %v", i, tr.AvgBitrate, l[i-1].AvgBitrate)
		}
		if tr.PeakBitrate < tr.AvgBitrate {
			t.Fatalf("rung %d peak %v below avg %v", i, tr.PeakBitrate, tr.AvgBitrate)
		}
		if tr.ID != spec.VideoTracks[i].ID || tr.Resolution != spec.VideoTracks[i].Resolution {
			t.Fatalf("rung %d lost template identity: %q/%q", i, tr.ID, tr.Resolution)
		}
	}
	// The shaped ladder must remain usable in content synthesis.
	if _, err := media.NewContent(plan.Spec(spec)); err != nil {
		t.Fatalf("shaped ladder content: %v", err)
	}
}

// TestFixedSpecKeepsUniformContract verifies the baseline variant: same
// scene signal, but uniform chunking and the authored ladder — and content
// built from a plain spec (no scenes) stays byte-identical to the preset.
func TestFixedSpecKeepsUniformContract(t *testing.T) {
	spec := baseSpec()
	plan, err := shaping.Optimize(spec, shaping.Config{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fixed := media.MustNewContent(plan.FixedSpec(spec))
	if !fixed.Aligned() || fixed.Irregular(media.Video) || fixed.Irregular(media.Audio) {
		t.Fatal("fixed variant must keep the uniform aligned timeline")
	}
	if fixed.NumChunks() != int(spec.Duration/spec.ChunkDuration) {
		t.Fatalf("fixed variant has %d chunks, want %d", fixed.NumChunks(), int(spec.Duration/spec.ChunkDuration))
	}
	// Scenes change sizes (that is their purpose), but not the timeline; a
	// spec without scenes must reproduce the preset exactly.
	plain := media.MustNewContent(baseSpec())
	preset := media.DramaShow()
	for _, tr := range preset.Tracks() {
		a, b := preset.TrackSizes(tr), plain.TrackSizes(plain.TrackByID(tr.ID))
		if len(a) != len(b) {
			t.Fatalf("track %s: %d vs %d chunks", tr.ID, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("track %s chunk %d: size %d != preset %d", tr.ID, i, b[i], a[i])
			}
		}
	}
}
