package shaping

import (
	"fmt"
	"math"
	"time"
)

// optimizeBoundaries runs the boundary DP for one track type: cells holds
// the per-grid-cell mean complexity (last cell may be short), and the
// returned durations are grid-aligned, strictly positive, and sum exactly
// to total.
//
// Dynamic program over grid positions p_0=0 < p_1 < … < p_N=total:
// best[i] is the cheapest chunking of [0, p_i) ending with a boundary at
// p_i, built from every feasible predecessor j with
// params.MinChunk ≤ p_i−p_j ≤ params.MaxChunk (the final boundary also
// accepts a shorter remainder chunk, so any total is feasible).
func optimizeBoundaries(cells []float64, total, grid time.Duration, params BoundaryParams) ([]time.Duration, float64, error) {
	if params.MinChunk <= 0 || params.MaxChunk < params.MinChunk {
		return nil, 0, fmt.Errorf("invalid chunk bounds [%v, %v]", params.MinChunk, params.MaxChunk)
	}
	if total <= params.MaxChunk {
		// Degenerate short title: one chunk.
		secs := total.Seconds()
		return []time.Duration{total}, params.RequestCost + params.LengthCost*secs*secs, nil
	}

	// Grid positions and integral prefix sums of c and c² (cell widths are
	// grid except possibly the last).
	n := len(cells)
	pos := make([]time.Duration, n+1)
	s1 := make([]float64, n+1)
	s2 := make([]float64, n+1)
	for j := 0; j < n; j++ {
		pos[j] = time.Duration(j) * grid
		w := grid
		if pos[j]+w > total {
			w = total - pos[j]
		}
		ws := w.Seconds()
		s1[j+1] = s1[j] + cells[j]*ws
		s2[j+1] = s2[j] + cells[j]*cells[j]*ws
	}
	pos[n] = total

	// +Inf marks unreached positions; math.IsInf keeps the sentinel test
	// exact without a float equality.
	best := make([]float64, n+1)
	from := make([]int, n+1)
	for i := 1; i <= n; i++ {
		best[i] = math.Inf(1)
		from[i] = -1
	}
	for i := 1; i <= n; i++ {
		minLen := params.MinChunk
		if i == n {
			// The remainder chunk may be shorter than MinChunk (but never
			// shorter than one grid cell).
			minLen = grid
		}
		for j := i - 1; j >= 0; j-- {
			d := pos[i] - pos[j]
			if d > params.MaxChunk {
				break
			}
			if d < minLen || math.IsInf(best[j], 1) {
				continue
			}
			secs := d.Seconds()
			mean := (s1[i] - s1[j]) / secs
			varInt := (s2[i] - s2[j]) - secs*mean*mean
			if varInt < 0 {
				varInt = 0 // float noise on constant signals
			}
			c := best[j] + params.RequestCost + params.VarianceCost*varInt + params.LengthCost*secs*secs
			if c < best[i] {
				best[i] = c
				from[i] = j
			}
		}
	}
	if math.IsInf(best[n], 1) {
		return nil, 0, fmt.Errorf("no feasible chunking of %v with bounds [%v, %v]", total, params.MinChunk, params.MaxChunk)
	}

	var bounds []int
	for i := n; i > 0; i = from[i] {
		bounds = append(bounds, i)
	}
	durs := make([]time.Duration, len(bounds))
	prev := 0
	for k := len(bounds) - 1; k >= 0; k-- {
		i := bounds[k]
		durs[len(bounds)-1-k] = pos[i] - pos[prev]
		prev = i
	}
	return durs, best[n], nil
}
