// Package shaping is the offline content-preparation stage: given a title's
// encoding spec, it searches chunk boundaries and ladder rungs against a
// simulated QoE objective, per track type — the Segue-style "content-aware
// chunking + per-title ladder" pipeline, run before any manifest is written.
//
// The pipeline has three deterministic, seeded stages:
//
//  1. A scene model: a piecewise-constant complexity signal over media time
//     (scene-change-like breakpoints from VBR complexity). The same signal
//     feeds both the optimizer and the chunk-size synthesis
//     (media.ChunkModel.Scenes), so "fixed" and "shaped" variants of one
//     title integrate the same underlying content.
//  2. A boundary search per track type: dynamic programming over a fixed
//     grid of candidate boundaries, trading per-request overhead against
//     within-chunk complexity variance (video boundaries snap to scene
//     changes; audio, whose complexity is flat, settles on longer
//     near-uniform chunks — deliberately misaligned with video).
//  3. A per-title video ladder search: greedy rung selection from multiple
//     starts over a candidate bitrate grid, scored by expected log-utility
//     over a seeded bandwidth distribution. Starts are evaluated via
//     runpool, so -parallel N produces byte-identical plans to a serial run.
//
// Everything is pure computation on the spec — no wall clock, no global
// rand; the same Config always yields the same Plan (the shaping-determinism
// gate in check.sh serializes the Plan and compares bytes).
package shaping

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"

	"demuxabr/internal/media"
)

// Config parameterizes one shaping run. The zero value of any field falls
// back to the default noted on it; Seed 0 is a valid seed.
type Config struct {
	// Seed drives the scene model and the bandwidth samples of the ladder
	// objective. Same seed, same spec, same config ⇒ same Plan, bit for bit.
	Seed int64

	// Grid is the candidate-boundary spacing (default 500ms). Scene
	// durations and every chunk boundary are multiples of Grid, so chunk
	// durations survive millisecond manifest serialization exactly.
	Grid time.Duration

	// Video / Audio bound the boundary search per track type. Audio
	// defaults to longer chunks than video: audio complexity is flat, so
	// its optimum is pure request-overhead amortization.
	Video BoundaryParams
	Audio BoundaryParams

	// Rungs is the size of the searched video ladder (default: the size of
	// the spec's ladder). Candidates is the size of the candidate bitrate
	// grid the rungs are chosen from (default 24). BandwidthSamples is how
	// many seeded bandwidth draws score a ladder (default 48).
	Rungs            int
	Candidates       int
	BandwidthSamples int

	// Workers fans the ladder search's greedy restarts out via runpool
	// (0 ⇒ GOMAXPROCS, 1 ⇒ serial). Output is identical for any value.
	Workers int
}

// BoundaryParams is the per-type boundary-search objective. Each chunk
// [a,b) costs
//
//	RequestCost + VarianceCost·∫(c(t)−mean)²dt + LengthCost·(b−a)²
//
// and the DP minimizes the total: RequestCost pushes toward fewer, longer
// chunks (the per-request RTT tax demuxing doubles), VarianceCost cuts
// chunks at scene changes, LengthCost caps runaway chunk growth between
// them.
type BoundaryParams struct {
	MinChunk, MaxChunk time.Duration
	RequestCost        float64
	VarianceCost       float64
	LengthCost         float64
}

const defaultGrid = 500 * time.Millisecond

func (c Config) withDefaults(spec media.ContentSpec) Config {
	if c.Grid <= 0 {
		c.Grid = defaultGrid
	}
	if c.Video == (BoundaryParams{}) {
		c.Video = BoundaryParams{
			MinChunk:     2 * time.Second,
			MaxChunk:     8 * time.Second,
			RequestCost:  0.30,
			VarianceCost: 2.0,
			LengthCost:   0.004,
		}
	}
	if c.Audio == (BoundaryParams{}) {
		// Flat complexity: the optimum is near sqrt(RequestCost/LengthCost)
		// ≈ 6s — longer than video chunks and misaligned with them.
		c.Audio = BoundaryParams{
			MinChunk:    3 * time.Second,
			MaxChunk:    9 * time.Second,
			RequestCost: 0.36,
			LengthCost:  0.01,
		}
	}
	if c.Rungs <= 0 {
		c.Rungs = len(spec.VideoTracks)
	}
	if c.Candidates <= 0 {
		c.Candidates = 24
	}
	if c.BandwidthSamples <= 0 {
		c.BandwidthSamples = 48
	}
	return c
}

// Plan is the output of one shaping run: the complete offline decision for
// one title. Apply it to the title's spec with Spec, or serialize it with
// Fingerprint for the determinism gate.
type Plan struct {
	Title string
	Seed  int64

	// Scenes is the generated complexity signal; both the shaped variant
	// and any fixed-chunking baseline of the same title should synthesize
	// sizes from it (media.ChunkModel.Scenes) so the comparison holds the
	// content constant.
	Scenes []media.Scene

	// VideoChunks / AudioChunks are the searched per-chunk durations; each
	// sums exactly to the title duration.
	VideoChunks []time.Duration
	AudioChunks []time.Duration

	// VideoLadder is the searched per-title ladder (same rung count and
	// metadata as the input ladder, re-placed bitrates). The audio ladder
	// is kept as authored: its rungs are product decisions (channel
	// layouts, languages), not rate-distortion points.
	VideoLadder media.Ladder

	// VideoCost / AudioCost are the boundary objective values; LadderScore
	// is the expected log-utility of the chosen ladder.
	VideoCost, AudioCost float64
	LadderScore          float64
}

// Optimize runs the full pipeline for one title.
func Optimize(spec media.ContentSpec, cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults(spec)
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("shaping: spec %q has no duration", spec.Name)
	}
	if len(spec.VideoTracks) == 0 {
		return nil, fmt.Errorf("shaping: spec %q has no video ladder", spec.Name)
	}
	scenes := GenerateScenes(cfg.Seed, spec.Duration, cfg.Grid)
	cells := cellComplexities(scenes, spec.Duration, cfg.Grid)

	p := &Plan{Title: spec.Name, Seed: cfg.Seed, Scenes: scenes}
	var err error
	if p.VideoChunks, p.VideoCost, err = optimizeBoundaries(cells, spec.Duration, cfg.Grid, cfg.Video); err != nil {
		return nil, fmt.Errorf("shaping: video boundaries: %w", err)
	}
	flat := make([]float64, len(cells))
	for i := range flat {
		flat[i] = 1
	}
	if p.AudioChunks, p.AudioCost, err = optimizeBoundaries(flat, spec.Duration, cfg.Grid, cfg.Audio); err != nil {
		return nil, fmt.Errorf("shaping: audio boundaries: %w", err)
	}
	if p.VideoLadder, p.LadderScore, err = searchLadder(spec.VideoTracks, cfg); err != nil {
		return nil, fmt.Errorf("shaping: ladder: %w", err)
	}
	return p, nil
}

// Spec returns the spec with the plan applied: searched chunk tables, the
// searched video ladder, and the scene model wired into size synthesis. The
// input spec is not modified.
func (p *Plan) Spec(base media.ContentSpec) media.ContentSpec {
	out := base
	out.VideoChunks = p.VideoChunks
	out.AudioChunks = p.AudioChunks
	if len(p.VideoLadder) > 0 {
		out.VideoTracks = p.VideoLadder
	}
	out.Model.Scenes = p.Scenes
	return out
}

// FixedSpec returns the fixed-chunking baseline of the same title: uniform
// chunks and the authored ladder, but sizes synthesized from the SAME scene
// signal — the apples-to-apples counterpart of Spec.
func (p *Plan) FixedSpec(base media.ContentSpec) media.ContentSpec {
	out := base
	out.Model.Scenes = p.Scenes
	return out
}

// Fingerprint serializes the plan deterministically (for golden comparisons
// and the shaping-determinism gate).
func (p *Plan) Fingerprint() []byte {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		// Plan holds only plain data; marshaling cannot fail.
		panic(err)
	}
	return append(b, '\n')
}

// GenerateScenes draws the seeded piecewise-constant complexity signal:
// scene durations uniform in [2s, 12s] (quantized to grid), complexities
// log-normal around 1, clamped to [0.4, 2.2]. The final scene is truncated
// to land exactly on total.
func GenerateScenes(seed int64, total, grid time.Duration) []media.Scene {
	if grid <= 0 {
		grid = defaultGrid
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5ce7e5))
	var out []media.Scene
	var at time.Duration
	for at < total {
		d := 2*time.Second + time.Duration(rng.Int63n(int64(10*time.Second)))
		d = d / grid * grid
		if d < grid {
			d = grid
		}
		if at+d > total {
			d = total - at
		}
		c := math.Exp(0.45 * rng.NormFloat64())
		c = math.Max(0.4, math.Min(c, 2.2))
		out = append(out, media.Scene{Duration: d, Complexity: c})
		at += d
	}
	return out
}

// cellComplexities samples the scene signal onto the boundary grid: one
// mean complexity per grid cell (the last cell may be shorter than grid).
func cellComplexities(scenes []media.Scene, total, grid time.Duration) []float64 {
	n := int((total + grid - 1) / grid)
	out := make([]float64, n)
	for i := range out {
		from := time.Duration(i) * grid
		to := from + grid
		if to > total {
			to = total
		}
		out[i] = meanSceneComplexity(scenes, from, to)
	}
	return out
}

// meanSceneComplexity mirrors media's time-weighted scene integration for
// the optimizer's view of the signal.
func meanSceneComplexity(scenes []media.Scene, from, to time.Duration) float64 {
	if to <= from {
		return 1
	}
	var weighted float64
	var at time.Duration
	for _, sc := range scenes {
		end := at + sc.Duration
		lo, hi := from, to
		if at > lo {
			lo = at
		}
		if end < hi {
			hi = end
		}
		if hi > lo {
			weighted += sc.Complexity * (hi - lo).Seconds()
		}
		at = end
		if at >= to {
			break
		}
	}
	return weighted / (to - from).Seconds()
}
