package shaping

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"demuxabr/internal/media"
	"demuxabr/internal/runpool"
)

// Ladder-objective constants: a rung is usable at bandwidth w when its
// bitrate fits under w with headroom to spare; a sample no rung fits pays a
// rebuffer-style penalty proportional to the overshoot of the lowest rung.
const (
	ladderHeadroom      = 1.1
	ladderRebufPenalty  = 4.0
	ladderMedianKbps    = 1200.0
	ladderSigma         = 0.75
	ladderMinSampleKbps = 150.0
	ladderMaxSampleKbps = 9000.0
)

// searchLadder picks cfg.Rungs video bitrates from a geometric candidate
// grid spanning [0.6·lowest, 1.15·highest] of the authored ladder,
// maximizing expected log-utility over seeded bandwidth samples. One greedy
// build per candidate starting rung, fanned out via runpool and reduced in
// submission order, so the result is byte-identical for any worker count.
func searchLadder(orig media.Ladder, cfg Config) (media.Ladder, float64, error) {
	if cfg.Rungs > cfg.Candidates {
		return nil, 0, fmt.Errorf("%d rungs from %d candidates", cfg.Rungs, cfg.Candidates)
	}
	cands := candidateGrid(orig, cfg.Candidates)
	if len(cands) < cfg.Rungs {
		return nil, 0, fmt.Errorf("candidate grid collapsed to %d < %d rungs", len(cands), cfg.Rungs)
	}
	samples := bandwidthSamples(cfg.Seed, cfg.BandwidthSamples)
	ref := float64(cands[0])

	type attempt struct {
		score float64
		rungs []media.Bps
	}
	attempts, err := runpool.Map(cfg.Workers, len(cands), func(s int) (attempt, error) {
		rungs := greedyFrom(cands, s, cfg.Rungs, samples, ref)
		return attempt{score: ladderScore(rungs, samples, ref), rungs: rungs}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	best := attempts[0]
	for _, a := range attempts[1:] {
		// Strict inequality: ties resolve to the lowest starting index.
		if a.score > best.score {
			best = a
		}
	}

	out := make(media.Ladder, len(best.rungs))
	for i, v := range best.rungs {
		tmpl := orig[len(orig)-1]
		if i < len(orig) {
			tmpl = orig[i]
		}
		tr := *tmpl
		ratioPeak := float64(tmpl.PeakBitrate) / float64(tmpl.AvgBitrate)
		ratioDecl := float64(tmpl.DeclaredBitrate) / float64(tmpl.AvgBitrate)
		tr.AvgBitrate = v
		tr.PeakBitrate = roundKbps(float64(v) * ratioPeak)
		tr.DeclaredBitrate = roundKbps(float64(v) * ratioDecl)
		out[i] = &tr
	}
	return out, best.score, nil
}

// candidateGrid builds the geometric candidate bitrates, rounded to whole
// Kbps and deduplicated (strictly increasing).
func candidateGrid(orig media.Ladder, n int) []media.Bps {
	lo := 0.6 * float64(orig[0].AvgBitrate)
	hi := 1.15 * float64(orig[len(orig)-1].AvgBitrate)
	out := make([]media.Bps, 0, n)
	for k := 0; k < n; k++ {
		f := float64(k) / float64(n-1)
		v := roundKbps(lo * math.Pow(hi/lo, f))
		if len(out) > 0 && v <= out[len(out)-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}

func roundKbps(v float64) media.Bps {
	return media.Bps(math.Round(v/1000) * 1000)
}

// bandwidthSamples draws the seeded bandwidth distribution the objective
// integrates over: log-normal around the median, clamped to plausible
// last-mile rates.
func bandwidthSamples(seed int64, n int) []media.Bps {
	rng := rand.New(rand.NewSource(seed ^ 0xba4d1e))
	out := make([]media.Bps, n)
	for i := range out {
		kbps := ladderMedianKbps * math.Exp(ladderSigma*rng.NormFloat64())
		kbps = math.Max(ladderMinSampleKbps, math.Min(kbps, ladderMaxSampleKbps))
		out[i] = media.Kbps(kbps)
	}
	return out
}

// ladderScore is the expected per-sample utility of a rung set (must be
// sorted ascending). ref fixes the utility origin across all candidate
// ladders so scores are comparable.
func ladderScore(rungs []media.Bps, samples []media.Bps, ref float64) float64 {
	if len(rungs) == 0 {
		return math.Inf(-1)
	}
	var sum float64
	for _, w := range samples {
		fit := media.Bps(-1)
		for _, r := range rungs {
			if float64(r)*ladderHeadroom <= float64(w) {
				fit = r
			} else {
				break
			}
		}
		if fit > 0 {
			sum += math.Log(float64(fit) / ref)
		} else {
			// Nothing fits: play the lowest rung anyway and pay for the
			// overshoot (rebuffering risk grows with it).
			low := float64(rungs[0])
			sum += math.Log(low/ref) - ladderRebufPenalty*(low*ladderHeadroom/float64(w)-1)
		}
	}
	return sum / float64(len(samples))
}

// greedyFrom builds a k-rung ladder containing cands[start], adding at each
// step the candidate that maximizes the objective (ties to the lowest
// candidate index — fully deterministic).
func greedyFrom(cands []media.Bps, start, k int, samples []media.Bps, ref float64) []media.Bps {
	chosen := map[int]bool{start: true}
	rungs := []media.Bps{cands[start]}
	for len(rungs) < k {
		bestIdx := -1
		bestScore := math.Inf(-1)
		for c := range cands {
			if chosen[c] {
				continue
			}
			trial := insertSorted(rungs, cands[c])
			if s := ladderScore(trial, samples, ref); s > bestScore {
				bestScore = s
				bestIdx = c
			}
		}
		chosen[bestIdx] = true
		rungs = insertSorted(rungs, cands[bestIdx])
	}
	return rungs
}

// insertSorted returns a fresh ascending slice with v inserted.
func insertSorted(rungs []media.Bps, v media.Bps) []media.Bps {
	i := sort.Search(len(rungs), func(i int) bool { return rungs[i] >= v })
	out := make([]media.Bps, 0, len(rungs)+1)
	out = append(out, rungs[:i]...)
	out = append(out, v)
	return append(out, rungs[i:]...)
}
