package core_test

import (
	"fmt"
	"log"

	"demuxabr/internal/core"
	"demuxabr/internal/media"
	"demuxabr/internal/trace"
)

// ExamplePlay streams the paper's Table 1 content with the best-practice
// player over a steady link and prints the headline QoE facts.
func ExamplePlay() {
	sess, err := core.Play(core.Spec{
		Profile: trace.Fixed(media.Kbps(900)),
		Player:  core.BestPractice,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model:", sess.Model)
	fmt.Println("stalls:", sess.Metrics.StallCount)
	fmt.Println("off-manifest chunks:", sess.Metrics.OffManifest)
	fmt.Println("dominant combos within H_sub:", sess.Metrics.DistinctCombos <= 6)
	// Output:
	// model: bestpractice
	// stalls: 0
	// off-manifest chunks: 0
	// dominant combos within H_sub: true
}

// ExamplePlay_shakaPathology reproduces the Fig 4(a) pathology in four
// lines: on a constant 1 Mbps link no throughput interval reaches Shaka's
// 16 KB filter, so the 500 Kbps default sticks and V2+A2 streams.
func ExamplePlay_shakaPathology() {
	sess, err := core.Play(core.Spec{
		Profile:  trace.Fixed(media.Kbps(1000)),
		Player:   core.Shaka,
		Manifest: core.ManifestOptions{Combos: media.HAll(media.DramaShow())},
	})
	if err != nil {
		log.Fatal(err)
	}
	last := sess.Result.Timeline[len(sess.Result.Timeline)-1]
	fmt.Printf("estimate: %v\n", last.Estimate)
	fmt.Printf("selection: %s+%s\n", last.Video.ID, last.Audio.ID)
	// Output:
	// estimate: 500Kbps
	// selection: V2+A2
}

// ExampleBuildModel shows how models are constructed from manifests: the
// information each player sees is exactly what its protocol carries.
func ExampleBuildModel() {
	content := media.DramaShow()
	model, allowed, err := core.BuildModel(core.BestPractice, content, core.ManifestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model:", model.Name())
	fmt.Println("allowed combinations:", len(allowed))
	// Output:
	// model: bestpractice
	// allowed combinations: 6
}
