package core

import (
	"testing"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/trace"
)

func TestPlayDefaults(t *testing.T) {
	s, err := Play(Spec{Profile: trace.Fixed(media.Kbps(2000))})
	if err != nil {
		t.Fatal(err)
	}
	if s.Model != "bestpractice" {
		t.Errorf("default model = %s", s.Model)
	}
	if !s.Result.Ended {
		t.Error("session did not end")
	}
	if s.Metrics.OffManifest != 0 {
		t.Errorf("best practice selected %d off-manifest chunks", s.Metrics.OffManifest)
	}
	if s.Allowed == nil {
		t.Error("allowed list missing for an HLS-manifest player")
	}
}

func TestPlayRequiresProfile(t *testing.T) {
	if _, err := Play(Spec{}); err == nil {
		t.Error("nil profile should fail")
	}
}

func TestEveryPlayerKindRuns(t *testing.T) {
	for _, kind := range PlayerKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			s, err := Play(Spec{
				Profile: trace.Fixed(media.Kbps(1500)),
				Player:  kind,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !s.Result.Ended {
				t.Error("session did not end")
			}
			if len(s.Result.Chunks) == 0 {
				t.Error("no chunks downloaded")
			}
		})
	}
}

func TestParsePlayerKind(t *testing.T) {
	if _, err := ParsePlayerKind("exoplayer-dash"); err != nil {
		t.Error(err)
	}
	if _, err := ParsePlayerKind("vlc"); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestBuildModelUnknownKind(t *testing.T) {
	if _, _, err := BuildModel("nope", media.DramaShow(), ManifestOptions{}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestManifestOptionsRespected(t *testing.T) {
	c := media.DramaShow()
	// List A3 first: ExoPlayer-HLS must pin it.
	order := []*media.Track{c.AudioTracks[2], c.AudioTracks[1], c.AudioTracks[0]}
	s, err := Play(Spec{
		Content:  c,
		Profile:  trace.Fixed(media.Kbps(2000)),
		Player:   ExoPlayerHLS,
		Manifest: ManifestOptions{AudioOrder: order},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics.AvgAudioBitrate != c.AudioTracks[2].AvgBitrate {
		t.Errorf("avg audio = %v, want pinned A3 (%v)", s.Metrics.AvgAudioBitrate, c.AudioTracks[2].AvgBitrate)
	}
}

func TestBufferOverrides(t *testing.T) {
	s, err := Play(Spec{
		Profile:   trace.Fixed(media.Kbps(5000)),
		Player:    BestPractice,
		MaxBuffer: 12 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	limit := 12*time.Second + media.DramaChunkDuration + time.Second
	for _, sm := range s.Result.Timeline {
		if sm.VideoBuffer > limit {
			t.Fatalf("buffer %v exceeds overridden cap", sm.VideoBuffer)
		}
	}
}

// TestIntegrationMatrix runs every player kind under several network
// conditions and checks the engine invariants: playback ends, the session
// time identity holds, every chunk position is streamed once per type, and
// buffers never exceed the cap.
func TestIntegrationMatrix(t *testing.T) {
	profiles := map[string]trace.Profile{
		"fixed-700k":  trace.Fixed(media.Kbps(700)),
		"fixed-2M":    trace.Fixed(media.Kbps(2000)),
		"bimodal-600": trace.Fig4bBimodal600(),
		"randomwalk":  trace.RandomWalk(9, media.Kbps(400), media.Kbps(2500), 4*time.Second, time.Minute),
	}
	content := media.DramaShow()
	for _, kind := range PlayerKinds() {
		for pname, profile := range profiles {
			kind, pname, profile := kind, pname, profile
			t.Run(string(kind)+"/"+pname, func(t *testing.T) {
				t.Parallel()
				s, err := Play(Spec{Content: content, Profile: profile, Player: kind})
				if err != nil {
					t.Fatal(err)
				}
				res := s.Result
				if !res.Ended {
					t.Fatal("playback did not end")
				}
				want := res.StartupDelay + res.ContentDuration + res.RebufferTime()
				if diff := (res.EndedAt - want).Abs(); diff > time.Millisecond {
					t.Errorf("time identity violated: ended %v, want %v", res.EndedAt, want)
				}
				counts := map[media.Type]map[int]int{media.Video: {}, media.Audio: {}}
				for _, ch := range res.Chunks {
					counts[ch.Type][ch.Index]++
				}
				for typ, m := range counts {
					if len(m) != content.NumChunks() {
						t.Errorf("%s: %d distinct positions, want %d", typ, len(m), content.NumChunks())
					}
				}
				limit := 30*time.Second + content.ChunkDuration + time.Second
				for _, sm := range res.Timeline {
					if sm.VideoBuffer > limit || sm.AudioBuffer > limit {
						t.Fatalf("buffer cap violated at %v: %v/%v", sm.At, sm.VideoBuffer, sm.AudioBuffer)
					}
				}
			})
		}
	}
}
