// Package core is the library's high-level API: build a demuxed content
// asset, pick a player model and a network profile, run a streaming
// session, and read back the timeline and QoE metrics.
//
// It wires the full stack the way a deployment would: the chosen protocol's
// manifest is generated and re-parsed, and the player model is constructed
// from the parsed manifest — never from ground truth the real player could
// not see.
package core

import (
	"bytes"
	"fmt"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/dashjs"
	"demuxabr/internal/abr/exoplayer"
	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/abr/lowlat"
	"demuxabr/internal/abr/shaka"
	"demuxabr/internal/faults"
	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// PlayerKind names one of the library's player models.
type PlayerKind string

// The available player models.
const (
	// ExoPlayerDASH is ExoPlayer v2.10 with a DASH manifest (§3.2).
	ExoPlayerDASH PlayerKind = "exoplayer-dash"
	// ExoPlayerHLS is ExoPlayer v2.10 with an HLS master playlist (§3.2).
	ExoPlayerHLS PlayerKind = "exoplayer-hls"
	// Shaka is Shaka Player v2.5 (§3.3); DASH and HLS behave identically
	// when the HLS manifest lists all combinations.
	Shaka PlayerKind = "shaka"
	// DashJS is the dash.js v2.9 reference player (§3.4).
	DashJS PlayerKind = "dashjs"
	// BestPractice is the paper's §4 joint audio/video adaptation design.
	BestPractice PlayerKind = "bestpractice"
	// BestPracticeIndependent ablates best practice 4 (chunk-synced
	// scheduling).
	BestPracticeIndependent PlayerKind = "bestpractice-independent"
	// BestPracticeAbandon adds in-flight chunk abandonment to the
	// best-practice player.
	BestPracticeAbandon PlayerKind = "bestpractice-abandon"
	// BolaJoint is the §5 future-work design: BOLA's utility objective
	// over the allowed audio/video combinations.
	BolaJoint PlayerKind = "bola-joint"
	// MPCJoint is a model-predictive joint adapter over the allowed
	// combinations (Yin et al. style lookahead).
	MPCJoint PlayerKind = "mpc-joint"
	// VBRJoint budgets actual per-chunk bytes (recovered from the media
	// playlists' byte ranges, §4.1) instead of declared averages.
	VBRJoint PlayerKind = "bestpractice-vbr"
	// DynamicJoint is dash.js's DYNAMIC strategy applied jointly — the
	// controlled counterpart of DashJS that isolates §3.4's independence.
	DynamicJoint PlayerKind = "dynamic-joint"
	// LLDefault is dash.js's plain throughput rule in a low-latency
	// session: no latency feedback anywhere in the decision.
	LLDefault PlayerKind = "ll-default"
	// LLL2A is the Learn2Adapt-LowLatency rule (virtual latency-violation
	// queue shrinking the bitrate budget).
	LLL2A PlayerKind = "ll-l2a"
	// LLLoLP is the LoL+ rule (low-percentile estimate, latency-gated
	// up-switch hysteresis).
	LLLoLP PlayerKind = "ll-lolp"
)

// PlayerKinds lists every selectable model.
func PlayerKinds() []PlayerKind {
	return []PlayerKind{ExoPlayerDASH, ExoPlayerHLS, Shaka, DashJS, BestPractice, BestPracticeIndependent, BestPracticeAbandon, BolaJoint, MPCJoint, VBRJoint, DynamicJoint, LLDefault, LLL2A, LLLoLP}
}

// ParsePlayerKind validates a player name.
func ParsePlayerKind(s string) (PlayerKind, error) {
	for _, k := range PlayerKinds() {
		if string(k) == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("core: unknown player %q (have %v)", s, PlayerKinds())
}

// ManifestOptions controls what the server declares.
type ManifestOptions struct {
	// Combos is the HLS variant list (default: the curated H_sub pairing).
	Combos []media.Combo
	// AudioOrder is the HLS rendition order (default: ladder order,
	// lowest first). The first entry is what ExoPlayer-HLS pins.
	AudioOrder []*media.Track
}

// BuildModel constructs a player model for the content, routing the
// manifest information through the real encoders and parsers. It returns
// the model and the combination list the server declared (nil for pure
// DASH models, which get no combination restriction — the §2.3 gap).
func BuildModel(kind PlayerKind, c *media.Content, mo ManifestOptions) (abr.Algorithm, []media.Combo, error) {
	if mo.Combos == nil {
		mo.Combos = media.HSub(c)
	}
	switch kind {
	case ExoPlayerDASH, DashJS:
		video, audio, err := roundTripMPD(c)
		if err != nil {
			return nil, nil, err
		}
		if kind == ExoPlayerDASH {
			return exoplayer.NewDASH(video, audio), nil, nil
		}
		return dashjs.New(video, audio), nil, nil
	case ExoPlayerHLS, Shaka, BestPractice, BestPracticeIndependent, BestPracticeAbandon, BolaJoint, MPCJoint, VBRJoint, DynamicJoint, LLDefault, LLL2A, LLLoLP:
		combos, order, err := roundTripMaster(c, mo.Combos, mo.AudioOrder)
		if err != nil {
			return nil, nil, err
		}
		switch kind {
		case ExoPlayerHLS:
			return exoplayer.NewHLS(combos, order), combos, nil
		case Shaka:
			return shaka.NewHLS(combos), combos, nil
		case BestPractice:
			return jointabr.New(combos), combos, nil
		case BestPracticeAbandon:
			return jointabr.New(combos, jointabr.WithAbandonment()), combos, nil
		case BolaJoint:
			return jointabr.NewBolaJoint(combos, 0), combos, nil
		case MPCJoint:
			return jointabr.NewMPC(combos, 0), combos, nil
		case VBRJoint:
			sizer, err := chunkSizerFromPlaylists(c)
			if err != nil {
				return nil, nil, err
			}
			return jointabr.NewVBRAware(combos, sizer), combos, nil
		case DynamicJoint:
			return jointabr.NewDynamicJoint(combos), combos, nil
		case LLDefault:
			return lowlat.NewDefault(combos), combos, nil
		case LLL2A:
			return lowlat.NewL2A(combos), combos, nil
		case LLLoLP:
			return lowlat.NewLoLP(combos), combos, nil
		default:
			return jointabr.NewIndependent(combos), combos, nil
		}
	default:
		return nil, nil, fmt.Errorf("core: unknown player kind %q", kind)
	}
}

// chunkSizerFromPlaylists recovers per-chunk byte sizes the way a §4.1
// client does: from the single-file media playlists' EXT-X-BYTERANGE rows.
func chunkSizerFromPlaylists(c *media.Content) (jointabr.ChunkSizer, error) {
	sizes := make(map[string][]int64, len(c.Tracks()))
	for _, tr := range c.Tracks() {
		var buf bytes.Buffer
		if err := hls.GenerateMedia(c, tr, hls.SingleFile, false).Encode(&buf); err != nil {
			return nil, err
		}
		pl, err := hls.ParseMedia(&buf)
		if err != nil {
			return nil, err
		}
		per := make([]int64, len(pl.Segments))
		for i, seg := range pl.Segments {
			per[i] = seg.ByteRangeLength
		}
		sizes[tr.ID] = per
	}
	return func(tr *media.Track, idx int) int64 {
		per := sizes[tr.ID]
		if idx < 0 || idx >= len(per) {
			return 0
		}
		return per[idx]
	}, nil
}

func roundTripMPD(c *media.Content) (media.Ladder, media.Ladder, error) {
	var buf bytes.Buffer
	if err := dash.Generate(c).Encode(&buf); err != nil {
		return nil, nil, err
	}
	mpd, err := dash.Parse(&buf)
	if err != nil {
		return nil, nil, err
	}
	return dash.Ladders(mpd)
}

func roundTripMaster(c *media.Content, combos []media.Combo, order []*media.Track) ([]media.Combo, []*media.Track, error) {
	var buf bytes.Buffer
	if err := hls.GenerateMaster(c, combos, order).Encode(&buf); err != nil {
		return nil, nil, err
	}
	m, err := hls.ParseMaster(&buf)
	if err != nil {
		return nil, nil, err
	}
	parsed, err := hls.CombosFromMaster(m, c)
	if err != nil {
		return nil, nil, err
	}
	parsedOrder, err := hls.AudioOrderFromMaster(m, c)
	if err != nil {
		return nil, nil, err
	}
	return parsed, parsedOrder, nil
}

// Spec describes one streaming session.
type Spec struct {
	// Content is the asset (default: the paper's drama show).
	Content *media.Content
	// Profile is the network condition (required).
	Profile trace.Profile
	// Player picks a built-in model (default BestPractice). Ignored when
	// Model is set.
	Player PlayerKind
	// Model overrides Player with a custom algorithm.
	Model abr.Algorithm
	// Manifest controls server-side declarations.
	Manifest ManifestOptions
	// MaxBuffer, StartupBuffer, ResumeBuffer override the player engine's
	// defaults when non-zero.
	MaxBuffer     time.Duration
	StartupBuffer time.Duration
	ResumeBuffer  time.Duration
	// Muxed streams each combination as one combined object (the paper's
	// muxed packaging baseline). Requires a joint player model.
	Muxed bool
	// Faults injects seeded download failures and link blackouts (demuxed
	// sessions only).
	Faults *faults.Plan
	// Robustness enables retries, blacklisting and failover; nil keeps the
	// legacy fail-fast behaviour (the session aborts on the first fault).
	Robustness *faults.Policy
	// Deadline overrides the engine's default session deadline when
	// non-zero.
	Deadline time.Duration
	// Recorder, when non-nil, collects the session's flight-recorder
	// events (ABR decisions, request lifecycle, stalls, link-rate changes;
	// see internal/timeline). Nil disables recording.
	Recorder *timeline.Recorder
	// RTT is the link's request round trip; zero keeps the paper's
	// negligible-RTT testbed. Transport handshake costs scale with it.
	RTT time.Duration
	// Transport, when non-nil, routes requests through transport
	// connections (handshakes, stream caps, HoL coupling; see
	// netsim.Conn). Nil keeps requests directly on the link.
	Transport *netsim.TransportConfig
	// Live, when non-nil, runs the session in latency-target live mode
	// (availability gating, catch-up rate control, live-edge resync; see
	// player.LiveConfig). Nil keeps the exact VOD behaviour.
	Live *player.LiveConfig
}

// Session is a finished run: the raw result plus derived metrics.
type Session struct {
	// Model names the algorithm that ran.
	Model string
	// Result is the full timeline, stall and chunk log.
	Result *player.Result
	// Metrics are the QoE numbers (off-manifest counted against Allowed).
	Metrics qoe.Metrics
	// Allowed is the server-declared combination list (may be nil).
	Allowed []media.Combo
}

// Play runs one session in the discrete-event simulator.
func Play(spec Spec) (*Session, error) {
	if spec.Profile == nil {
		return nil, fmt.Errorf("core: nil network profile")
	}
	if spec.Content == nil {
		spec.Content = media.DramaShow()
	}
	model := spec.Model
	allowed := spec.Manifest.Combos
	if model == nil {
		kind := spec.Player
		if kind == "" {
			kind = BestPractice
		}
		var err error
		model, allowed, err = BuildModel(kind, spec.Content, spec.Manifest)
		if err != nil {
			return nil, err
		}
	}
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, spec.Profile)
	link.RTT = spec.RTT
	if spec.Recorder != nil {
		link.SetRecorder(spec.Recorder, "link")
	}
	res, err := player.Run(link, player.Config{
		Content:       spec.Content,
		Model:         model,
		MaxBuffer:     spec.MaxBuffer,
		StartupBuffer: spec.StartupBuffer,
		ResumeBuffer:  spec.ResumeBuffer,
		Muxed:         spec.Muxed,
		FaultPlan:     spec.Faults,
		Robustness:    spec.Robustness,
		Deadline:      spec.Deadline,
		Recorder:      spec.Recorder,
		Transport:     spec.Transport,
		Live:          spec.Live,
	})
	if err != nil {
		return nil, err
	}
	return &Session{
		Model:   model.Name(),
		Result:  res,
		Metrics: qoe.Compute(res, spec.Content, allowed, qoe.DefaultWeights()),
		Allowed: allowed,
	}, nil
}
