// Package faults is the deterministic fault-injection layer and the
// download-robustness policy shared by the simulator and the real HTTP
// path.
//
// A Plan decides, as a pure function of (seed, track, segment index,
// attempt), whether a segment request fails and how: HTTP 404/503,
// connection reset, response timeout, or mid-transfer truncation. Because
// the decision is a hash rather than a stateful RNG stream, it is
// independent of request order — sessions fanned out across runpool
// workers see exactly the faults a serial run sees, which is what keeps
// resilience reports byte-identical under -parallel N.
//
// A Policy describes how a robust client reacts: per-request timeout,
// bounded exponential backoff with seeded jitter, per-track failure
// blacklisting, and failover to the next candidate track — ExoPlayer-style
// load-error handling. The same Policy drives the player simulation (in
// virtual time) and httpclient (in wall time); only the sleep primitive
// differs.
package faults

import (
	"fmt"
	"time"
)

// Kind is one failure mode a segment request can suffer.
type Kind int

// The injectable failure modes.
const (
	// None means the request succeeds.
	None Kind = iota
	// HTTP404 is a not-found response: fails fast, no bytes transferred.
	HTTP404
	// HTTP503 is a service-unavailable response: fails fast, retryable.
	HTTP503
	// Reset is a connection reset partway through the body.
	Reset
	// Timeout is a response that never arrives; only a client-side
	// request timeout detects it.
	Timeout
	// Truncate is a body cut short of its declared length: the client
	// receives a fraction of the bytes, then the connection closes.
	Truncate
	// HandshakeFail is a connection attempt that dies in setup (DNS, TCP
	// or TLS/QUIC handshake): the request burns the handshake round
	// trips, receives nothing, and the connection starts the next
	// attempt cold. Fails fast, retryable.
	HandshakeFail
	// Migration is a network path change under the client (WiFi to
	// cellular). It is not a failure: QUIC validates the new path in one
	// round trip and keeps the connection, TCP must reconnect — the cost
	// only exists when a transport is configured.
	Migration
)

// String names the kind for logs and reports.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case HTTP404:
		return "http-404"
	case HTTP503:
		return "http-503"
	case Reset:
		return "reset"
	case Timeout:
		return "timeout"
	case Truncate:
		return "truncate"
	case HandshakeFail:
		return "handshake-fail"
	case Migration:
		return "migration"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllKinds is the default injection mix. The transport kinds are not in
// it: adding them would re-deal every existing seeded plan's kind draws,
// and they only model costs when a transport is configured. Opt in with
// TransportKinds.
func AllKinds() []Kind {
	return []Kind{HTTP404, HTTP503, Reset, Timeout, Truncate}
}

// TransportKinds are the connection-level fault kinds introduced with
// the transport layer; append them to a plan's Kinds to exercise
// handshake failures and path migrations.
func TransportKinds() []Kind {
	return []Kind{HandshakeFail, Migration}
}

// Fault is one injected failure.
type Fault struct {
	// Kind is the failure mode.
	Kind Kind
	// Fraction is how much of the body arrives before a Reset or
	// Truncate (0 for the fail-fast kinds).
	Fraction float64
	// Persistence is how many consecutive attempts the fault survives;
	// attempt numbers >= Persistence succeed.
	Persistence int
}

// Window is a half-open interval of session time during which a link is
// fully blacked out.
type Window struct {
	Start, End time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool {
	return t >= w.Start && t < w.End
}

// Plan is a seeded, order-independent fault schedule. The zero value
// injects nothing.
type Plan struct {
	// Seed selects the schedule; two plans with the same seed and knobs
	// agree on every decision.
	Seed int64
	// Rate is the per-segment-request fault probability in [0, 1].
	Rate float64
	// Kinds restricts which failure modes are injected (default: all).
	Kinds []Kind
	// MaxPersistence bounds how many consecutive attempts one fault
	// survives; each fault draws its persistence from 1..MaxPersistence
	// (default 2). Negative means faults never clear — every attempt on
	// a faulted segment fails, modelling a hard failure.
	MaxPersistence int
	// Targets restricts injection to these track IDs (nil = all tracks).
	Targets []string
	// Blackouts are link outage windows; the network layer (netsim
	// Link.AddOutage, or the origin's shaper) applies them.
	Blackouts []Window

	// Observe, when non-nil, is called on every positive SegmentFault
	// decision — the flight recorder's injection point. It does not affect
	// the decision, so an observed plan and its unobserved copy agree on
	// every draw.
	Observe func(trackID string, idx, attempt int, f Fault)
}

// SegmentFault decides whether the given attempt at downloading segment
// idx of the track fails, and how. The decision is a pure function: any
// caller, in any order, on any goroutine, gets the same answer (Observe
// only watches positive decisions, it cannot change them).
func (p *Plan) SegmentFault(trackID string, idx, attempt int) (Fault, bool) {
	if p == nil || p.Rate <= 0 {
		return Fault{}, false
	}
	if len(p.Targets) > 0 {
		hit := false
		for _, id := range p.Targets {
			if id == trackID {
				hit = true
				break
			}
		}
		if !hit {
			return Fault{}, false
		}
	}
	h := Key(p.Seed, trackID, idx)
	if unit(h) >= p.Rate {
		return Fault{}, false
	}
	kinds := p.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	f := Fault{Kind: kinds[mix(h^0xa5a5a5a5)%uint64(len(kinds))]}
	maxPersist := p.MaxPersistence
	if maxPersist == 0 {
		maxPersist = 2
	}
	if maxPersist < 0 {
		f.Persistence = attempt + 1 // never clears
	} else {
		f.Persistence = 1 + int(mix(h^0x5a5a5a5a)%uint64(maxPersist))
	}
	if attempt >= f.Persistence {
		return Fault{}, false
	}
	if f.Kind == Reset || f.Kind == Truncate {
		f.Fraction = 0.1 + 0.8*unit(mix(h^0x3c3c3c3c))
	}
	if p.Observe != nil {
		p.Observe(trackID, idx, attempt, f)
	}
	return f, true
}

// Key hashes a (seed, track, segment) triple into the 64-bit space all
// per-request randomness (fault draws, backoff jitter) is derived from.
func Key(seed int64, trackID string, idx int) uint64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(trackID); i++ {
		h = mix(h ^ uint64(trackID[i]))
	}
	return mix(h ^ uint64(uint32(idx)))
}

// mix is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(uint64(1)<<53)
}

// Policy is the download-robustness configuration. The zero value is not
// useful; start from DefaultPolicy or call WithDefaults.
type Policy struct {
	// MaxAttempts is the per-track request budget for one segment,
	// including the first try; once spent the client fails over.
	MaxAttempts int
	// RequestTimeout bounds one request; a request exceeding it is
	// cancelled and counted as a fault.
	RequestTimeout time.Duration
	// BaseBackoff is the delay before the first retry.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// BackoffFactor multiplies the delay per retry.
	BackoffFactor float64
	// JitterFrac spreads each delay uniformly over
	// [1-J/2, 1+J/2] × nominal, seeded so replays agree.
	JitterFrac float64
	// BlacklistAfter is how many consecutive failures exile a track.
	BlacklistAfter int
	// BlacklistFor is how long an exiled track stays ineligible.
	BlacklistFor time.Duration
}

// DefaultPolicy is the ExoPlayer-flavoured default: a handful of quick
// retries, then failover, with a 15 s request timeout generous enough that
// slow-but-alive links are not misread as dead.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:    4,
		RequestTimeout: 15 * time.Second,
		BaseBackoff:    200 * time.Millisecond,
		MaxBackoff:     3200 * time.Millisecond,
		BackoffFactor:  2,
		JitterFrac:     0.5,
		BlacklistAfter: 3,
		BlacklistFor:   30 * time.Second,
	}
}

// WithDefaults fills zero-valued knobs from DefaultPolicy.
func (p Policy) WithDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxAttempts == 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.RequestTimeout == 0 {
		p.RequestTimeout = d.RequestTimeout
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	//lint:ignore floateq exact zero detects the unset zero value, not a computed quantity
	if p.BackoffFactor == 0 {
		p.BackoffFactor = d.BackoffFactor
	}
	//lint:ignore floateq exact zero detects the unset zero value, not a computed quantity
	if p.JitterFrac == 0 {
		p.JitterFrac = d.JitterFrac
	}
	if p.BlacklistAfter == 0 {
		p.BlacklistAfter = d.BlacklistAfter
	}
	if p.BlacklistFor == 0 {
		p.BlacklistFor = d.BlacklistFor
	}
	return p
}

// Backoff is the delay before retry number attempt+1 (attempt counts from
// 0 = the first, failed, try). key seeds the jitter — pass Key(seed,
// trackID, idx) so the delay is a replayable function of the request, not
// of scheduler interleaving.
func (p Policy) Backoff(attempt int, key uint64) time.Duration {
	d := float64(p.BaseBackoff)
	for i := 0; i < attempt; i++ {
		d *= p.BackoffFactor
	}
	if lim := float64(p.MaxBackoff); p.MaxBackoff > 0 && d > lim {
		d = lim
	}
	if p.JitterFrac > 0 {
		u := unit(mix(key ^ (uint64(uint32(attempt)) * 0x9e3779b97f4a7c15)))
		d *= 1 - p.JitterFrac/2 + p.JitterFrac*u
	}
	return time.Duration(d)
}

// Blacklist tracks per-track consecutive failures and exile windows. Time
// is whatever clock the caller lives on — virtual session time in the
// simulator, time.Since(start) on the real path. Not goroutine-safe;
// callers serialize access.
type Blacklist struct {
	strikes map[string]int
	until   map[string]time.Duration
}

// NewBlacklist returns an empty blacklist.
func NewBlacklist() *Blacklist {
	return &Blacklist{strikes: map[string]int{}, until: map[string]time.Duration{}}
}

// Strike records a failure for the track at the given time and reports
// whether the track just crossed the blacklist threshold.
func (b *Blacklist) Strike(trackID string, now time.Duration, p Policy) bool {
	b.strikes[trackID]++
	if p.BlacklistAfter > 0 && b.strikes[trackID] >= p.BlacklistAfter {
		b.until[trackID] = now + p.BlacklistFor
		b.strikes[trackID] = 0
		return true
	}
	return false
}

// Clear resets the consecutive-failure count after a success.
func (b *Blacklist) Clear(trackID string) {
	delete(b.strikes, trackID)
}

// Blocked reports whether the track is currently exiled.
func (b *Blacklist) Blocked(trackID string, now time.Duration) bool {
	until, ok := b.until[trackID]
	return ok && now < until
}
