package faults

import (
	"testing"
	"time"
)

// Two plans with the same seed must agree on every decision, in any call
// order — the property that keeps parallel sweeps byte-identical.
func TestSegmentFaultDeterministicAndOrderIndependent(t *testing.T) {
	a := &Plan{Seed: 42, Rate: 0.3}
	b := &Plan{Seed: 42, Rate: 0.3}
	tracks := []string{"V1", "V2", "A1", "A2"}
	type decision struct {
		f  Fault
		ok bool
	}
	forward := map[string]decision{}
	for _, tr := range tracks {
		for idx := 0; idx < 50; idx++ {
			f, ok := a.SegmentFault(tr, idx, 0)
			forward[tr+"/"+itoa(idx)] = decision{f, ok}
		}
	}
	// Reverse order, different plan value, same seed.
	for i := len(tracks) - 1; i >= 0; i-- {
		for idx := 49; idx >= 0; idx-- {
			f, ok := b.SegmentFault(tracks[i], idx, 0)
			want := forward[tracks[i]+"/"+itoa(idx)]
			if ok != want.ok || f != want.f {
				t.Fatalf("decision for (%s,%d) changed with call order: got (%+v,%v) want (%+v,%v)",
					tracks[i], idx, f, ok, want.f, want.ok)
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestSegmentFaultRate(t *testing.T) {
	p := &Plan{Seed: 7, Rate: 0.2}
	n, faulted := 5000, 0
	for idx := 0; idx < n; idx++ {
		if _, ok := p.SegmentFault("V1", idx, 0); ok {
			faulted++
		}
	}
	got := float64(faulted) / float64(n)
	if got < 0.15 || got > 0.25 {
		t.Fatalf("empirical fault rate %.3f far from configured 0.2", got)
	}
}

func TestSegmentFaultPersistenceClears(t *testing.T) {
	p := &Plan{Seed: 3, Rate: 1, MaxPersistence: 2}
	for idx := 0; idx < 20; idx++ {
		f, ok := p.SegmentFault("A1", idx, 0)
		if !ok {
			t.Fatalf("rate 1 must fault attempt 0 of segment %d", idx)
		}
		if f.Persistence < 1 || f.Persistence > 2 {
			t.Fatalf("persistence %d outside 1..2", f.Persistence)
		}
		if _, ok := p.SegmentFault("A1", idx, f.Persistence); ok {
			t.Fatalf("segment %d still faulted at attempt %d = persistence", idx, f.Persistence)
		}
	}
}

func TestSegmentFaultPermanent(t *testing.T) {
	p := &Plan{Seed: 3, Rate: 1, MaxPersistence: -1}
	for attempt := 0; attempt < 10; attempt++ {
		if _, ok := p.SegmentFault("A1", 0, attempt); !ok {
			t.Fatalf("MaxPersistence<0 must fault every attempt, cleared at %d", attempt)
		}
	}
}

func TestSegmentFaultTargets(t *testing.T) {
	p := &Plan{Seed: 3, Rate: 1, Targets: []string{"A1"}}
	if _, ok := p.SegmentFault("V1", 0, 0); ok {
		t.Fatal("fault injected on non-targeted track")
	}
	if _, ok := p.SegmentFault("A1", 0, 0); !ok {
		t.Fatal("no fault on targeted track at rate 1")
	}
}

func TestSegmentFaultKindsRestriction(t *testing.T) {
	p := &Plan{Seed: 11, Rate: 1, Kinds: []Kind{Timeout}}
	for idx := 0; idx < 30; idx++ {
		f, ok := p.SegmentFault("V1", idx, 0)
		if !ok {
			t.Fatalf("rate 1 must fault segment %d", idx)
		}
		if f.Kind != Timeout {
			t.Fatalf("kind %v escaped the Kinds restriction", f.Kind)
		}
	}
}

func TestNilPlanNeverFaults(t *testing.T) {
	var p *Plan
	if _, ok := p.SegmentFault("V1", 0, 0); ok {
		t.Fatal("nil plan injected a fault")
	}
}

func TestBackoffBoundedAndDeterministic(t *testing.T) {
	p := DefaultPolicy()
	key := Key(1, "V1", 3)
	for attempt := 0; attempt < 8; attempt++ {
		d1 := p.Backoff(attempt, key)
		d2 := p.Backoff(attempt, key)
		if d1 != d2 {
			t.Fatalf("backoff for attempt %d not deterministic: %v vs %v", attempt, d1, d2)
		}
		lo := time.Duration(float64(p.BaseBackoff) * (1 - p.JitterFrac/2))
		hi := time.Duration(float64(p.MaxBackoff) * (1 + p.JitterFrac/2))
		if d1 < lo || d1 > hi {
			t.Fatalf("backoff %v for attempt %d outside [%v, %v]", d1, attempt, lo, hi)
		}
	}
}

func TestBackoffGrows(t *testing.T) {
	p := DefaultPolicy()
	p.JitterFrac = 0
	if p.Backoff(0, 0) >= p.Backoff(2, 0) {
		t.Fatalf("backoff did not grow: %v vs %v", p.Backoff(0, 0), p.Backoff(2, 0))
	}
	if got := p.Backoff(10, 0); got != p.MaxBackoff {
		t.Fatalf("deep attempt backoff %v not capped at %v", got, p.MaxBackoff)
	}
}

func TestWithDefaultsFillsZeros(t *testing.T) {
	p := Policy{MaxAttempts: 9}.WithDefaults()
	if p.MaxAttempts != 9 {
		t.Fatalf("explicit knob overwritten: %d", p.MaxAttempts)
	}
	d := DefaultPolicy()
	if p.RequestTimeout != d.RequestTimeout || p.BackoffFactor != d.BackoffFactor || p.BlacklistAfter != d.BlacklistAfter {
		t.Fatalf("zero knobs not defaulted: %+v", p)
	}
}

func TestBlacklist(t *testing.T) {
	p := DefaultPolicy() // BlacklistAfter 3, BlacklistFor 30s
	b := NewBlacklist()
	now := 10 * time.Second
	if b.Strike("V2", now, p) || b.Strike("V2", now, p) {
		t.Fatal("blacklisted before threshold")
	}
	if !b.Strike("V2", now, p) {
		t.Fatal("third consecutive strike must blacklist")
	}
	if !b.Blocked("V2", now) {
		t.Fatal("track not blocked right after blacklisting")
	}
	if b.Blocked("V2", now+p.BlacklistFor) {
		t.Fatal("track still blocked after the exile window")
	}
	// Success clears the streak.
	b.Strike("A1", now, p)
	b.Strike("A1", now, p)
	b.Clear("A1")
	if b.Strike("A1", now, p) {
		t.Fatal("cleared streak still counted toward blacklisting")
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: 5 * time.Second, End: 8 * time.Second}
	if w.Contains(4*time.Second) || w.Contains(8*time.Second) {
		t.Fatal("window boundaries wrong (half-open expected)")
	}
	if !w.Contains(5*time.Second) || !w.Contains(7*time.Second) {
		t.Fatal("interior points not contained")
	}
}
