package experiments

import (
	"fmt"
	"time"

	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/cdnsim"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/trace"
)

// CrossTrafficResult is one player's outcome on a link with a competing
// flow in the middle of the session.
type CrossTrafficResult struct {
	Outcome Outcome
	// DuringKbps is the duration-weighted average video bitrate of chunks
	// decided while the cross traffic was active; BeforeKbps the same for
	// the clean leading window.
	BeforeKbps float64
	DuringKbps float64
}

// crossTrafficWindow is when the competing flow runs.
const (
	crossStart = 100 * time.Second
	crossStop  = 200 * time.Second
)

// CrossTraffic streams the drama show on a 2.5 Mbps link that a weight-6
// competing flow (several TCP connections' worth) shares between t=100 s
// and t=200 s, squeezing the player's chunk-pair to a ~625 Kbps aggregate
// share — the "dynamic network conditions" ABR exists for. Every player
// model must shed bitrate during the contention window and recover
// afterwards — except Shaka, whose 16 KB interval filter sees no valid
// samples at these per-flow rates and rides its stale estimate into
// rebuffering (the Fig. 4 root cause under contention).
func CrossTraffic() (map[string]CrossTrafficResult, error) {
	content := media.DramaShow()
	models, allowed, err := buildModels(content)
	if err != nil {
		return nil, err
	}
	out := make(map[string]CrossTrafficResult)
	for _, model := range models {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fixed(media.Kbps(2500)))
		link.StartCrossTraffic(6, crossStart, crossStop)
		res, err := player.Run(link, player.Config{Content: content, Model: model})
		if err != nil {
			return nil, err
		}
		if !res.Ended {
			return nil, fmt.Errorf("experiments: %s did not finish under cross traffic", model.Name())
		}
		r := CrossTrafficResult{Outcome: Outcome{
			Model:   model.Name(),
			Result:  res,
			Metrics: qoe.Compute(res, content, allowed, qoe.DefaultWeights()),
		}}
		// Skip the startup ramp in the clean window and the transition in
		// the contended one.
		r.BeforeKbps = windowedVideoKbps(res, content, 40*time.Second, crossStart)
		r.DuringKbps = windowedVideoKbps(res, content, crossStart+20*time.Second, crossStop)
		out[model.Name()] = r
	}
	return out, nil
}

// windowedVideoKbps averages the selected video track bitrate over chunks
// decided within [from, to).
func windowedVideoKbps(res *player.Result, c *media.Content, from, to time.Duration) float64 {
	var bitSeconds, seconds float64
	for _, ch := range res.Chunks {
		if ch.Type != media.Video || ch.DecidedAt < from || ch.DecidedAt >= to {
			continue
		}
		d := c.ChunkDurationOf(media.Video, ch.Index).Seconds()
		bitSeconds += float64(ch.Track.AvgBitrate) * d
		seconds += d
	}
	if seconds <= 0 {
		return 0
	}
	return bitSeconds / seconds / 1000
}

// MuxedBaselineResult contrasts the two packagings with the same player and
// link: the muxed baseline structurally eliminates the A/V balance problem,
// at the §1 origin-storage cost the cdnsim numbers quantify.
type MuxedBaselineResult struct {
	Demuxed Outcome
	Muxed   Outcome
	// StorageRatio is the muxed-over-demuxed origin storage for the
	// content's H_sub packaging.
	StorageRatio float64
}

// MuxedBaseline runs the best-practice player on the Fig. 3 link in both
// packagings.
func MuxedBaseline() (MuxedBaselineResult, error) {
	content := media.DramaShow()
	combos, _, err := hlsMaster(content, media.HSub(content), nil)
	if err != nil {
		return MuxedBaselineResult{}, err
	}
	run := func(muxed bool) (Outcome, error) {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fig3VaryingAvg600())
		model := jointabr.New(combos)
		res, err := player.Run(link, player.Config{Content: content, Model: model, Muxed: muxed})
		if err != nil {
			return Outcome{}, err
		}
		if !res.Ended {
			return Outcome{}, fmt.Errorf("experiments: muxed=%v did not finish", muxed)
		}
		return Outcome{
			Model:   model.Name(),
			Result:  res,
			Metrics: qoe.Compute(res, content, combos, qoe.DefaultWeights()),
		}, nil
	}
	var r MuxedBaselineResult
	if r.Demuxed, err = run(false); err != nil {
		return r, err
	}
	if r.Muxed, err = run(true); err != nil {
		return r, err
	}
	demuxedBytes := cdnsim.OriginStorage(content, cdnsim.Demuxed, nil)
	muxedBytes := cdnsim.OriginStorage(content, cdnsim.Muxed, media.HSub(content))
	r.StorageRatio = float64(muxedBytes) / float64(demuxedBytes)
	return r, nil
}
