package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/core"
	"demuxabr/internal/fleet"
	"demuxabr/internal/media"
	"demuxabr/internal/qoe"
	"demuxabr/internal/runpool"
	"demuxabr/internal/trace"
)

// FleetSeed seeds every fleet experiment: arrivals and derived per-session
// fault plans are functions of this constant, so the tables regenerate
// byte-identically.
const FleetSeed = 17

// DefaultFleetSizes is the scale sweep: from a solo session through a
// heavily contended 64-client edge.
func DefaultFleetSizes() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

// defaultFleetConfig is the shared topology of the fleet experiments: a
// fixed 24 Mbps edge uplink behind which every client has a 6 Mbps access
// link — uncontended through N=4, progressively squeezed beyond — with
// arrivals staggered over 30 s and a 60 ms origin-fetch penalty on edge
// cache misses. The fleet mixes the four joint models round-robin: a
// realistic edge serves heterogeneous players whose selections diverge, so
// muxed combination objects fragment the cache while demuxed track objects
// keep being shared (the §1 argument, measured).
func defaultFleetConfig(n int, mode cdnsim.Mode) fleet.Config {
	return fleet.Config{
		Sessions:      n,
		Mode:          mode,
		Mix:           []core.PlayerKind{core.BestPractice, core.BolaJoint, core.MPCJoint, core.DynamicJoint},
		UplinkProfile: trace.Fixed(media.Kbps(24_000)),
		AccessProfile: trace.Fixed(media.Kbps(6_000)),
		ArrivalSpread: 30 * time.Second,
		MissPenalty:   60 * time.Millisecond,
		Seed:          FleetSeed,
	}
}

// FleetScalePoint is one cell of the scale sweep: a fleet size under one
// packaging mode, reduced to its aggregates.
type FleetScalePoint struct {
	N int
	// NIndex is the position of N in the sweep's size list; PrintFleetScale
	// joins rows on it.
	NIndex    int
	Mode      cdnsim.Mode
	Fleet     qoe.FleetMetrics
	Cache     cdnsim.Stats
	Completed int
}

// FleetScale runs the scale sweep serially-equivalent at GOMAXPROCS
// workers.
func FleetScale(ns []int) ([]FleetScalePoint, error) {
	return FleetScaleParallel(ns, 0)
}

// FleetScaleParallel runs every fleet size under both packaging modes —
// the packaging-at-scale comparison: demuxed packaging's shared-cache
// amplification grows with N while muxed combination objects fragment the
// cache. Each (N, mode) job is one independent co-simulation on its own
// engine; collection is in job-submission order, so output is
// byte-identical at any worker count.
func FleetScaleParallel(ns []int, parallel int) ([]FleetScalePoint, error) {
	modes := []cdnsim.Mode{cdnsim.Demuxed, cdnsim.Muxed}
	return runpool.Map(parallel, len(ns)*len(modes), func(i int) (FleetScalePoint, error) {
		ni, mi := i/len(modes), i%len(modes)
		res, err := fleet.Run(defaultFleetConfig(ns[ni], modes[mi]))
		if err != nil {
			return FleetScalePoint{}, fmt.Errorf("fleet scale N=%d %s: %w", ns[ni], modes[mi], err)
		}
		return FleetScalePoint{
			N: ns[ni], NIndex: ni, Mode: modes[mi],
			Fleet: res.Fleet, Cache: res.Cache, Completed: res.Completed,
		}, nil
	})
}

// FleetMix names one fleet composition for the homogeneous-vs-mixed
// comparison.
type FleetMix struct {
	Name string
	Mix  []core.PlayerKind
}

// FleetMixes returns the compositions compared at fixed fleet size: each
// joint model running homogeneously, then all of them sharing one edge.
func FleetMixes() []FleetMix {
	return []FleetMix{
		{"bestpractice", []core.PlayerKind{core.BestPractice}},
		{"bola-joint", []core.PlayerKind{core.BolaJoint}},
		{"mpc-joint", []core.PlayerKind{core.MPCJoint}},
		{"dynamic-joint", []core.PlayerKind{core.DynamicJoint}},
		{"mixed", []core.PlayerKind{core.BestPractice, core.BolaJoint, core.MPCJoint, core.DynamicJoint}},
	}
}

// FleetMixPoint is one composition's outcome.
type FleetMixPoint struct {
	Name      string
	Sessions  int
	Fleet     qoe.FleetMetrics
	Cache     cdnsim.Stats
	Completed int
}

// FleetMixesParallel runs each composition as an n-session demuxed fleet on
// the default contended topology.
func FleetMixesParallel(n, parallel int) ([]FleetMixPoint, error) {
	mixes := FleetMixes()
	return runpool.Map(parallel, len(mixes), func(i int) (FleetMixPoint, error) {
		cfg := defaultFleetConfig(n, cdnsim.Demuxed)
		cfg.Mix = mixes[i].Mix
		res, err := fleet.Run(cfg)
		if err != nil {
			return FleetMixPoint{}, fmt.Errorf("fleet mix %s: %w", mixes[i].Name, err)
		}
		return FleetMixPoint{
			Name: mixes[i].Name, Sessions: n,
			Fleet: res.Fleet, Cache: res.Cache, Completed: res.Completed,
		}, nil
	})
}

// PrintFleetScale renders the scale sweep: per fleet size, the demuxed
// fleet's QoE distribution and fairness next to both modes' cache
// effectiveness. "amp" is the cache amplification of demuxed over muxed
// packaging — the §1 shared-track argument measured at scale.
func PrintFleetScale(w io.Writer, points []FleetScalePoint) {
	byCell := map[int]map[cdnsim.Mode]FleetScalePoint{}
	ncols := 0
	for _, p := range points {
		if byCell[p.NIndex] == nil {
			byCell[p.NIndex] = map[cdnsim.Mode]FleetScalePoint{}
		}
		byCell[p.NIndex][p.Mode] = p
		if p.NIndex+1 > ncols {
			ncols = p.NIndex + 1
		}
	}
	fmt.Fprintln(w, "Fleet scale sweep (24 Mbps shared uplink, 6 Mbps access, 30 s arrival spread):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "N\tdone\tQoE med\tQoE p10\tJain\tvideo med\tdemux hit\tmux hit\tamp")
	for i := 0; i < ncols; i++ {
		d, okD := byCell[i][cdnsim.Demuxed]
		m, okM := byCell[i][cdnsim.Muxed]
		if !okD || !okM {
			continue
		}
		amp := "-"
		if m.Cache.ByteHitRatio() > 0 {
			amp = fmt.Sprintf("%.2fx", d.Cache.ByteHitRatio()/m.Cache.ByteHitRatio())
		}
		fmt.Fprintf(tw, "%d\t%d/%d\t%.2f\t%.2f\t%.3f\t%.0fK\t%.3f\t%.3f\t%s\n",
			d.N, d.Completed, d.Fleet.Sessions,
			d.Fleet.Score.Median, d.Fleet.Score.P10, d.Fleet.JainVideoKbps,
			d.Fleet.VideoKbps.Median,
			d.Cache.ByteHitRatio(), m.Cache.ByteHitRatio(), amp)
	}
	tw.Flush()
}

// PrintFleetMixes renders the composition comparison.
func PrintFleetMixes(w io.Writer, points []FleetMixPoint) {
	if len(points) == 0 {
		return
	}
	fmt.Fprintf(w, "Fleet compositions at N=%d (demuxed, shared 24 Mbps uplink):\n", points[0].Sessions)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mix\tdone\tQoE med\tQoE p10\tJain\tvideo med\trebuf med\tbyte hit")
	for _, p := range points {
		fmt.Fprintf(tw, "%s\t%d/%d\t%.2f\t%.2f\t%.3f\t%.0fK\t%.1fs\t%.3f\n",
			p.Name, p.Completed, p.Fleet.Sessions,
			p.Fleet.Score.Median, p.Fleet.Score.P10, p.Fleet.JainVideoKbps,
			p.Fleet.VideoKbps.Median, p.Fleet.RebufferSeconds.Median,
			p.Cache.ByteHitRatio())
	}
	tw.Flush()
}

// FleetCellSessions is the contention-cell size used at scale: each cell is
// one edge neighborhood — 16 clients with 6 Mbps access links squeezing a
// 24 Mbps uplink, the same 4x oversubscription the classic sweep reaches at
// N=16 — replicated across the fleet by the seeded cell permutation.
const FleetCellSessions = 16

// DefaultFleetScaleNs are the large-fleet sizes benchmarked as the
// fleet-1e3/1e4/1e5 rows in BENCH_*.json.
func DefaultFleetScaleNs() []int { return []int{1_000, 10_000, 100_000} }

// FleetAtScale runs one large demuxed fleet partitioned into
// FleetCellSessions-sized cells across the given number of shard workers
// (0 = one per core), always on the streaming sketch path so memory stays
// O(shards + sketch) at any N. Output is byte-identical for every shards
// value.
func FleetAtScale(n, shards int) (*fleet.Result, error) {
	cfg := defaultFleetConfig(n, cdnsim.Demuxed)
	cfg.CellSessions = FleetCellSessions
	cfg.Shards = shards
	cfg.MaxRetained = -1 // stream at every N: the scale rows measure one path
	return fleet.Run(cfg)
}

// PrintFleetAtScale renders one large-fleet run's aggregates.
func PrintFleetAtScale(w io.Writer, res *fleet.Result) {
	f := res.Fleet
	fmt.Fprintf(w, "Fleet at scale: N=%d in %d cells of %d (demuxed, streaming aggregation):\n",
		f.Sessions, res.Cells, FleetCellSessions)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "done\tQoE med\tQoE p10\tJain\tvideo med\trebuf med\tstartup med\tbyte hit")
	fmt.Fprintf(tw, "%d/%d\t%.2f\t%.2f\t%.3f\t%.0fK\t%.1fs\t%.2fs\t%.3f\n",
		res.Completed, f.Sessions,
		f.Score.Median, f.Score.P10, f.JainVideoKbps,
		f.VideoKbps.Median, f.RebufferSeconds.Median, f.StartupSeconds.Median,
		res.Cache.ByteHitRatio())
	tw.Flush()
	fmt.Fprintf(w, "sampled per-session rows retained: %d\n", len(res.Sampled))
}
