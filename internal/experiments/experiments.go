// Package experiments defines one runner per table and figure of the
// paper's evaluation, wiring the full stack end-to-end: content synthesis →
// manifest generation and re-parsing → player model construction from the
// parsed manifest → discrete-event streaming session → QoE metrics.
//
// Every runner is deterministic; the benchmark harness (bench_test.go at
// the repository root) regenerates the paper's rows and series from these.
package experiments

import (
	"bytes"
	"fmt"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// Outcome bundles a session result with its computed metrics.
type Outcome struct {
	Model   string
	Result  *player.Result
	Metrics qoe.Metrics
}

// Run executes one streaming session. allowed (may be nil) is used for
// off-manifest accounting in the metrics.
func Run(content *media.Content, profile trace.Profile, model abr.Algorithm, allowed []media.Combo) (Outcome, error) {
	return RunRecorded(content, profile, model, allowed, nil)
}

// RunRecorded is Run with a flight recorder attached to the session and
// its link (nil rec behaves exactly like Run).
func RunRecorded(content *media.Content, profile trace.Profile, model abr.Algorithm, allowed []media.Combo, rec *timeline.Recorder) (Outcome, error) {
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, profile)
	if rec != nil {
		link.SetRecorder(rec, "link")
	}
	res, err := player.Run(link, player.Config{Content: content, Model: model, Recorder: rec})
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: %s: %w", model.Name(), err)
	}
	if !res.Ended {
		return Outcome{}, fmt.Errorf("experiments: %s: session did not finish", model.Name())
	}
	return Outcome{
		Model:   model.Name(),
		Result:  res,
		Metrics: qoe.Compute(res, content, allowed, qoe.DefaultWeights()),
	}, nil
}

// DominantCombo returns the combination selected for the most chunk
// positions.
func DominantCombo(res *player.Result) media.Combo {
	count := map[string]int{}
	rep := map[string]media.Combo{}
	video := map[int]*media.Track{}
	audio := map[int]*media.Track{}
	for _, ch := range res.Chunks {
		if ch.Type == media.Video {
			video[ch.Index] = ch.Track
		} else {
			audio[ch.Index] = ch.Track
		}
	}
	for i, v := range video {
		a := audio[i]
		if a == nil {
			continue
		}
		cb := media.Combo{Video: v, Audio: a}
		count[cb.String()]++
		rep[cb.String()] = cb
	}
	// Ties broken by name so the answer never depends on map iteration
	// order.
	var best media.Combo
	bestN := -1
	bestKey := ""
	for k, n := range count {
		if n > bestN || (n == bestN && k < bestKey) {
			bestN = n
			bestKey = k
			best = rep[k]
		}
	}
	return best
}

// dashLadders round-trips the content through a generated-and-parsed MPD,
// returning the ladders a real DASH client would reconstruct.
func dashLadders(c *media.Content) (video, audio media.Ladder, err error) {
	var buf bytes.Buffer
	if err := dash.Generate(c).Encode(&buf); err != nil {
		return nil, nil, err
	}
	mpd, err := dash.Parse(&buf)
	if err != nil {
		return nil, nil, err
	}
	return dash.Ladders(mpd)
}

// hlsMaster round-trips a master playlist, returning the combination list
// and rendition order a real HLS client would parse.
func hlsMaster(c *media.Content, combos []media.Combo, audioOrder []*media.Track) ([]media.Combo, []*media.Track, error) {
	var buf bytes.Buffer
	if err := hls.GenerateMaster(c, combos, audioOrder).Encode(&buf); err != nil {
		return nil, nil, err
	}
	m, err := hls.ParseMaster(&buf)
	if err != nil {
		return nil, nil, err
	}
	parsedCombos, err := hls.CombosFromMaster(m, c)
	if err != nil {
		return nil, nil, err
	}
	order, err := hls.AudioOrderFromMaster(m, c)
	if err != nil {
		return nil, nil, err
	}
	return parsedCombos, order, nil
}

// TimelinePoint is one figure sample: time, selected tracks, buffers,
// estimate — the series the paper's plots show.
type TimelinePoint struct {
	At          time.Duration
	Video       string
	Audio       string
	VideoBuffer time.Duration
	AudioBuffer time.Duration
	Estimate    media.Bps
	Stalled     bool
}

// Timeline converts a result's samples into figure points.
func Timeline(res *player.Result) []TimelinePoint {
	out := make([]TimelinePoint, 0, len(res.Timeline))
	for _, s := range res.Timeline {
		p := TimelinePoint{
			At:          s.At,
			VideoBuffer: s.VideoBuffer,
			AudioBuffer: s.AudioBuffer,
			Stalled:     s.Stalled,
		}
		if s.Video != nil {
			p.Video = s.Video.ID
		}
		if s.Audio != nil {
			p.Audio = s.Audio.ID
		}
		if s.EstimateOK {
			p.Estimate = s.Estimate
		}
		out = append(out, p)
	}
	return out
}
