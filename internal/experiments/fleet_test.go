package experiments

import (
	"bytes"
	"testing"
)

// TestFleetScaleParallelEquivalence is the runpool determinism gate for the
// fleet scale sweep: the rendered table at -parallel 1 (the literal serial
// loop) and at GOMAXPROCS workers must be byte-identical. Each (N, mode)
// job carries a whole multi-session co-simulation, so this also exercises
// engine-per-job isolation at its largest granularity.
func TestFleetScaleParallelEquivalence(t *testing.T) {
	ns := []int{1, 2, 4}
	render := func(parallel int) []byte {
		points, err := FleetScaleParallel(ns, parallel)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		PrintFleetScale(&buf, points)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(0)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel fleet scale diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestFleetDeterministic re-runs the mixed-composition fleet and demands
// byte-identical tables: arrivals, shared-bottleneck scheduling, and
// shared-cache state must all be pure functions of the seeded config.
func TestFleetDeterministic(t *testing.T) {
	render := func() []byte {
		points, err := FleetMixesParallel(4, 0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		PrintFleetMixes(&buf, points)
		return buf.Bytes()
	}
	first := render()
	if len(first) == 0 {
		t.Fatal("empty fleet mixes table")
	}
	if again := render(); !bytes.Equal(first, again) {
		t.Fatalf("fleet mixes not deterministic:\n--- first ---\n%s\n--- again ---\n%s", first, again)
	}
}

// TestFleetScaleCacheAmplification pins the tentpole claim at sweep scale:
// as the fleet grows, demuxed packaging's byte hit ratio at the shared edge
// amplifies relative to muxed packaging (sessions share track objects but
// not combination objects), and it does not shrink with N.
func TestFleetScaleCacheAmplification(t *testing.T) {
	points, err := FleetScaleParallel([]int{1, 4, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[int]map[string]FleetScalePoint{}
	for _, p := range points {
		if cells[p.N] == nil {
			cells[p.N] = map[string]FleetScalePoint{}
		}
		cells[p.N][p.Mode.String()] = p
	}
	for _, n := range []int{4, 8} {
		d, m := cells[n]["demuxed"], cells[n]["muxed"]
		if d.Cache.ByteHitRatio() <= m.Cache.ByteHitRatio() {
			t.Errorf("N=%d: demuxed byte hit %.3f not above muxed %.3f",
				n, d.Cache.ByteHitRatio(), m.Cache.ByteHitRatio())
		}
	}
	if cells[8]["demuxed"].Cache.ByteHitRatio() <= cells[1]["demuxed"].Cache.ByteHitRatio() {
		t.Errorf("demuxed byte hit did not grow with N: N=1 %.3f, N=8 %.3f",
			cells[1]["demuxed"].Cache.ByteHitRatio(), cells[8]["demuxed"].Cache.ByteHitRatio())
	}
}
