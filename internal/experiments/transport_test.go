package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"demuxabr/internal/netsim"
)

// TestTransportComparisonDeterminism pins the byte-identical contract:
// the comparison (and its rendering) must not depend on the worker count
// or the repetition.
func TestTransportComparisonDeterminism(t *testing.T) {
	serial, err := TransportComparisonParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TransportComparisonParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("transport comparison differs between serial and parallel runs")
	}
	again, err := TransportComparisonParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	PrintTransport(&a, parallel)
	PrintTransport(&b, again)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("transport report is not byte-identical across repeats")
	}
}

// TestTransportDeltaOrdering is the acceptance check for the family's
// headline: the demuxed-over-muxed stall delta must widen under HTTP/1.1
// and narrow under HTTP/3 (the QUIC-study direction), with HTTP/2
// between. Dead air alone separates h3 from the TCP pair; the
// connection-stall time separates all three strictly.
func TestTransportDeltaOrdering(t *testing.T) {
	cells, err := TransportComparison()
	if err != nil {
		t.Fatal(err)
	}
	d := TransportDeltas(cells)
	h1, h2, h3 := d[netsim.H1], d[netsim.H2], d[netsim.H3]
	t.Logf("deltas: h1 dead=%v stall=%v | h2 dead=%v stall=%v | h3 dead=%v stall=%v",
		h1.DeadAir, h1.ConnStall, h2.DeadAir, h2.ConnStall, h3.DeadAir, h3.ConnStall)
	if !(h1.Total() > h2.Total() && h2.Total() > h3.Total()) {
		t.Errorf("total stall deltas not ordered h1 > h2 > h3: %v, %v, %v",
			h1.Total(), h2.Total(), h3.Total())
	}
	if !(h1.ConnStall > h2.ConnStall && h2.ConnStall > h3.ConnStall) {
		t.Errorf("conn-stall deltas not ordered h1 > h2 > h3: %v, %v, %v",
			h1.ConnStall, h2.ConnStall, h3.ConnStall)
	}
	if h1.DeadAir <= h3.DeadAir {
		t.Errorf("dead-air delta does not widen under h1 vs h3: %v <= %v", h1.DeadAir, h3.DeadAir)
	}
	if h2.DeadAir <= h3.DeadAir {
		t.Errorf("dead-air delta does not widen under h2 vs h3: %v <= %v", h2.DeadAir, h3.DeadAir)
	}
	for _, p := range TransportProtocols() {
		if d[p].DeadAir <= 0 {
			t.Errorf("demuxed free-running should cost dead air under %s, got %v", p, d[p].DeadAir)
		}
	}
}

// TestTransportResilienceSanity checks the recovery-pricing direction:
// under the same fault draws QUIC's cheap reconnects must not wait
// longer on handshakes than the TCP protocols, and every session must
// survive the mix.
func TestTransportResilienceSanity(t *testing.T) {
	points, err := TransportResilienceParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d resilience points, want 3", len(points))
	}
	byProto := map[netsim.Protocol]TransportResiliencePoint{}
	for _, p := range points {
		if !p.Outcome.Result.Ended {
			t.Errorf("%s session did not survive the fault mix", p.Protocol)
		}
		if p.Outcome.Result.Transport == nil {
			t.Fatalf("%s session reported no transport stats", p.Protocol)
		}
		byProto[p.Protocol] = p
	}
	h1w := byProto[netsim.H1].Outcome.Result.Transport.HandshakeWait
	h3w := byProto[netsim.H3].Outcome.Result.Transport.HandshakeWait
	if h3w >= h1w {
		t.Errorf("h3 handshake wait %v not below h1's %v under identical faults", h3w, h1w)
	}
	serial, err := TransportResilienceParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, points) {
		t.Fatal("transport resilience differs between serial and parallel runs")
	}
}
