package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/cdnsim"
	"demuxabr/internal/faults"
	"demuxabr/internal/fleet"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/runpool"
	"demuxabr/internal/trace"
)

// TransportSeed keys every transport experiment's per-connection loss
// draws, so the tables regenerate byte-identically.
const TransportSeed = 4099

// TransportRTT is the access round trip of the transport experiments: a
// mobile last mile where handshake round trips are expensive enough to
// see (200 ms), rather than the paper's negligible-RTT testbed.
const TransportRTT = 200 * time.Millisecond

// TransportIdleTimeout is the modelled keep-alive window: how long a
// connection may sit idle before the next request pays a fresh setup
// (server keep-alive plus mobile radio/NAT idle teardown, which on
// cellular paths is well under a second). It sits between the
// per-connection request gaps of the packaging modes under study: a
// demuxed HTTP/1.1 session splits its requests across two connections
// whose individual gaps cross this threshold far more often than the one
// connection that sees every request.
const TransportIdleTimeout = 700 * time.Millisecond

// TransportLossRate is the per-request probability of a loss event (a
// retransmission stall) in the transport experiments.
const TransportLossRate = 0.02

// TransportMaxBuffer caps the player buffer in the transport comparison:
// a low-latency player that cannot ride out transport waits on a deep
// buffer (the latency-target operating point of the DASH.js study cited
// in PAPERS.md). Deep-buffer players absorb handshake waits almost
// entirely; short-buffer players convert them to dead air.
const TransportMaxBuffer = 8 * time.Second

// TransportTraceSeeds is how many random-walk traces the comparison
// averages over. One marginal trace makes the dead-air numbers hostage
// to phase coincidences between its dips and the buffer cycle; a seeded
// handful averages that out while staying byte-reproducible.
const TransportTraceSeeds = 8

// transportWalk is trace seed s of the comparison: a random walk between
// 250 and 1000 Kbps, re-drawn every 5 s — mostly above the pinned
// combination's rate (gaps open, keep-alives lapse) with real dips below
// it (the buffer bottoms out, so transport waits can surface as stalls).
func transportWalk(s int) trace.Profile {
	return trace.RandomWalk(int64(s+1), media.Kbps(250), media.Kbps(1000), 5*time.Second, 5*time.Minute)
}

// transportCombo pins the comparison's selection: V2+A1 (374 Kbps), the
// rung the walk straddles. Pinning removes ABR feedback from the
// measurement — adaptive runs answer "how does the ladder react", the
// other figure families' question; here the question is what the
// transport itself costs each packaging mode, so every cell downloads
// the same bytes on the same schedule impulse.
func transportCombo(c *media.Content) media.Combo {
	return media.Combo{Video: c.VideoTracks[1], Audio: c.AudioTracks[0]}
}

// pinnedJoint always selects the same combination (joint scheduling).
type pinnedJoint struct {
	abr.NopObserver
	combo media.Combo
}

func (p *pinnedJoint) Name() string                      { return "pinned-joint" }
func (p *pinnedJoint) SelectCombo(abr.State) media.Combo { return p.combo }

// pinnedPerType always selects the same tracks, one decision per type
// (independent scheduling — each type free-runs against its own buffer).
type pinnedPerType struct {
	abr.NopObserver
	combo media.Combo
}

func (p *pinnedPerType) Name() string { return "pinned-independent" }
func (p *pinnedPerType) SelectTrack(typ media.Type, _ abr.State) *media.Track {
	if typ == media.Video {
		return p.combo.Video
	}
	return p.combo.Audio
}

// transportConfig is the per-protocol preset dressed with the experiment
// constants. Trace seed s gets its own loss-draw seed so the seeds are
// independent replicas, still pure functions of (s, protocol).
func transportConfig(p netsim.Protocol, s int) netsim.TransportConfig {
	tc := netsim.DefaultTransport(p)
	tc.IdleTimeout = TransportIdleTimeout
	tc.LossRate = TransportLossRate
	tc.Seed = TransportSeed + int64(s)*7919
	return tc
}

// TransportProtocols is the comparison's protocol axis, in generation
// order.
func TransportProtocols() []netsim.Protocol {
	return []netsim.Protocol{netsim.H1, netsim.H2, netsim.H3}
}

// TransportScenarios names the packaging/scheduling rows of the
// comparison, in print order: the muxed baseline, the best-practice
// demuxed player (chunk-synced scheduling), and its free-running ablation.
func TransportScenarios() []string {
	return []string{"muxed", "demux-synced", "demux-independent"}
}

// TransportCell is one (scenario, protocol) cell of the comparison,
// averaged over the TransportTraceSeeds traces.
type TransportCell struct {
	Scenario string
	Protocol netsim.Protocol
	Seeds    int

	// Startup and Rebuffer are per-trace means; ConnStall is the mean
	// time the cell's requests spent stalled inside the transport —
	// waiting out handshakes or head-of-line freezes — instead of moving
	// bytes. Dead air is what the viewer sees; conn stall is where the
	// transport spent the session's patience.
	Startup   time.Duration
	Rebuffer  time.Duration
	ConnStall time.Duration

	// Score is the mean QoE score.
	Score float64

	// Stats sums the transport counters across the traces.
	Stats player.TransportStats
}

// DeadAir is the viewer-facing half of the cell: mean startup delay plus
// mean rebuffering — every second the screen showed nothing.
func (c TransportCell) DeadAir() time.Duration { return c.Startup + c.Rebuffer }

// StalledTime is dead air plus connection-stall time: every second a
// viewer or a request spent waiting on something other than media bytes.
func (c TransportCell) StalledTime() time.Duration { return c.DeadAir() + c.ConnStall }

// TransportComparison crosses the packaging/scheduling scenarios with the
// three HTTP generations. This is the paper's demuxed-vs-muxed question
// re-asked one layer down: demuxed packaging doubles the request count
// and (under HTTP/1.1) splits it over two connections, so the
// transport's fixed costs — handshakes after keep-alive lapses,
// head-of-line freezes under loss — hit the packagings differently per
// protocol.
func TransportComparison() ([]TransportCell, error) {
	return TransportComparisonParallel(0)
}

// TransportComparisonParallel is TransportComparison with an explicit
// worker count (0 = GOMAXPROCS, 1 = serial). Each cell runs its traces
// serially on private engines; loss draws are pure functions of (seed,
// connection label, request ordinal), so cells are byte-identical at any
// worker count and come back in the fixed order: scenarios outer,
// protocols inner.
func TransportComparisonParallel(parallel int) ([]TransportCell, error) {
	content := media.DramaShow()
	combo := transportCombo(content)
	scens := []struct {
		name  string
		muxed bool
		build func() abr.Algorithm
	}{
		{"muxed", true, func() abr.Algorithm { return &pinnedJoint{combo: combo} }},
		{"demux-synced", false, func() abr.Algorithm { return &pinnedJoint{combo: combo} }},
		{"demux-independent", false, func() abr.Algorithm { return &pinnedPerType{combo: combo} }},
	}
	protos := TransportProtocols()
	return runpool.Map(parallel, len(scens)*len(protos), func(i int) (TransportCell, error) {
		si, pi := i/len(protos), i%len(protos)
		cell := TransportCell{Scenario: scens[si].name, Protocol: protos[pi], Seeds: TransportTraceSeeds}
		for s := 0; s < TransportTraceSeeds; s++ {
			tc := transportConfig(protos[pi], s)
			eng := netsim.NewEngine()
			link := netsim.NewLink(eng, transportWalk(s))
			link.RTT = TransportRTT
			model := scens[si].build()
			res, err := player.Run(link, player.Config{
				Content:   content,
				Model:     model,
				Muxed:     scens[si].muxed,
				MaxBuffer: TransportMaxBuffer,
				Transport: &tc,
			})
			if err != nil {
				return TransportCell{}, fmt.Errorf("transport %s/%s seed %d: %w", scens[si].name, protos[pi], s, err)
			}
			if !res.Ended {
				return TransportCell{}, fmt.Errorf("transport %s/%s seed %d: session did not finish", scens[si].name, protos[pi], s)
			}
			m := qoe.Compute(res, content, nil, qoe.DefaultWeights())
			cell.Startup += m.StartupDelay
			cell.Rebuffer += m.RebufferTime
			cell.Score += m.Score
			if t := res.Transport; t != nil {
				cell.ConnStall += t.HandshakeWait + t.HoLWait
				cell.Stats.Handshakes += t.Handshakes
				cell.Stats.Resumes += t.Resumes
				cell.Stats.FailedHandshakes += t.FailedHandshakes
				cell.Stats.Migrations += t.Migrations
				cell.Stats.HoLStalls += t.HoLStalls
				cell.Stats.HandshakeWait += t.HandshakeWait
				cell.Stats.HoLWait += t.HoLWait
			}
		}
		n := time.Duration(TransportTraceSeeds)
		cell.Startup /= n
		cell.Rebuffer /= n
		cell.ConnStall /= n
		cell.Score /= float64(TransportTraceSeeds)
		return cell, nil
	})
}

// TransportDelta is the demuxed-over-muxed cost under one protocol: the
// free-running demuxed player's mean dead air and connection-stall time
// over the muxed baseline's.
type TransportDelta struct {
	DeadAir   time.Duration
	ConnStall time.Duration
}

// Total is the delta in StalledTime.
func (d TransportDelta) Total() time.Duration { return d.DeadAir + d.ConnStall }

// TransportDeltas reduces the comparison to the paper-style question: what
// does demuxed packaging cost over the muxed baseline, per protocol? The
// demuxed representative is the free-running (independent-scheduling)
// player — the common deployed behavior §3 measures. The stall deltas
// widen under HTTP/1.1 (two connections, each idling out and
// re-handshaking on its own clock) and narrow under HTTP/3 (one
// multiplexed connection, 0-RTT resumption, per-stream loss recovery),
// with HTTP/2 between (one shared connection, but TCP setup pricing and
// whole-connection head-of-line freezes).
func TransportDeltas(cells []TransportCell) map[netsim.Protocol]TransportDelta {
	type pair struct{ dead, stall time.Duration }
	byCell := map[string]map[netsim.Protocol]pair{}
	for _, c := range cells {
		if byCell[c.Scenario] == nil {
			byCell[c.Scenario] = map[netsim.Protocol]pair{}
		}
		byCell[c.Scenario][c.Protocol] = pair{c.DeadAir(), c.ConnStall}
	}
	out := map[netsim.Protocol]TransportDelta{}
	for _, p := range TransportProtocols() {
		d, m := byCell["demux-independent"][p], byCell["muxed"][p]
		out[p] = TransportDelta{DeadAir: d.dead - m.dead, ConnStall: d.stall - m.stall}
	}
	return out
}

// PrintTransport renders the comparison: per-cell dead air, QoE, and the
// transport-level accounting, then the demuxed-over-muxed stall deltas.
func PrintTransport(w io.Writer, cells []TransportCell) {
	fmt.Fprintf(w, "Transport comparison (pinned V2+A1, %d walk traces 250-1000 Kbps, RTT %v, keep-alive %v, loss %.0f%%, %v buffer cap):\n",
		TransportTraceSeeds, TransportRTT, TransportIdleTimeout, TransportLossRate*100, TransportMaxBuffer)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tproto\tstartup\trebuf\tdead air\tconn stall\tstalled\tQoE\thandshakes\tresumes\thol stalls")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%s\t%.2fs\t%.2fs\t%.2fs\t%.1fs\t%.1fs\t%.2f\t%d\t%d\t%d\n",
			c.Scenario, c.Protocol,
			c.Startup.Seconds(), c.Rebuffer.Seconds(), c.DeadAir().Seconds(),
			c.ConnStall.Seconds(), c.StalledTime().Seconds(), c.Score,
			c.Stats.Handshakes, c.Stats.Resumes, c.Stats.HoLStalls)
	}
	tw.Flush()
	fmt.Fprintln(w, "Demuxed-over-muxed stall deltas (independent scheduling, mean per session):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "proto\tdead air\tconn stall\ttotal")
	deltas := TransportDeltas(cells)
	for _, p := range TransportProtocols() {
		d := deltas[p]
		fmt.Fprintf(tw, "%s\t%+.2fs\t%+.2fs\t%+.2fs\n",
			p, d.DeadAir.Seconds(), d.ConnStall.Seconds(), d.Total().Seconds())
	}
	tw.Flush()
	fmt.Fprintln(w, "The demuxed-over-muxed stall delta widens under h1 (two serial connections,")
	fmt.Fprintln(w, "each re-handshaking after its own keep-alive lapses) and narrows under h3")
	fmt.Fprintln(w, "(one multiplexed connection, 0-RTT resumption, per-stream loss recovery).")
}

// TransportResiliencePoint is one protocol's outcome under the
// connection-fault mix.
type TransportResiliencePoint struct {
	Protocol netsim.Protocol
	Outcome  Outcome
}

// TransportResilience runs the best-practice player under a fault plan
// that mixes the classic request faults with the transport kinds
// (handshake failures, path migrations), once per protocol. The faults
// are identical across protocols — the same draws, the same chunks — so
// the spread is purely the protocols' recovery pricing: TCP-family
// connections die on migration and pay resume round trips on every
// reconnect, QUIC revalidates in one round trip and resumes for free.
func TransportResilience() ([]TransportResiliencePoint, error) {
	return TransportResilienceParallel(0)
}

// TransportResilienceParallel is TransportResilience with an explicit
// worker count.
func TransportResilienceParallel(parallel int) ([]TransportResiliencePoint, error) {
	content := media.DramaShow()
	combos, _, err := hlsMaster(content, media.HSub(content), nil)
	if err != nil {
		return nil, err
	}
	protos := TransportProtocols()
	pol := faults.DefaultPolicy()
	return runpool.Map(parallel, len(protos), func(i int) (TransportResiliencePoint, error) {
		tc := transportConfig(protos[i], 0)
		plan := &faults.Plan{
			Seed:  ResilienceSeed,
			Rate:  0.05,
			Kinds: append(faults.AllKinds(), faults.TransportKinds()...),
		}
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fig3VaryingAvg600())
		link.RTT = TransportRTT
		model := jointabr.New(combos)
		res, err := player.Run(link, player.Config{
			Content:    content,
			Model:      model,
			FaultPlan:  plan,
			Robustness: &pol,
			Transport:  &tc,
		})
		if err != nil {
			return TransportResiliencePoint{}, fmt.Errorf("transport resilience %s: %w", protos[i], err)
		}
		return TransportResiliencePoint{
			Protocol: protos[i],
			Outcome: Outcome{
				Model:   model.Name(),
				Result:  res,
				Metrics: qoe.Compute(res, content, combos, qoe.DefaultWeights()),
			},
		}, nil
	})
}

// PrintTransportResilience renders the per-protocol recovery table.
func PrintTransportResilience(w io.Writer, points []TransportResiliencePoint) {
	fmt.Fprintln(w, "Transport resilience (5% faults incl. handshake failures and migrations):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "proto\tended\tQoE\trebuf\tfaults\tretries\tfailed hs\tmigrations\tresumes\ths wait")
	for _, p := range points {
		t := p.Outcome.Result.Transport
		if t == nil {
			t = &player.TransportStats{}
		}
		fmt.Fprintf(tw, "%s\t%v\t%.2f\t%.1fs\t%d\t%d\t%d\t%d\t%d\t%.1fs\n",
			p.Protocol, p.Outcome.Result.Ended,
			p.Outcome.Metrics.Score,
			p.Outcome.Metrics.RebufferTime.Seconds(),
			len(p.Outcome.Result.Faults), p.Outcome.Result.Retries,
			t.FailedHandshakes, t.Migrations, t.Resumes,
			t.HandshakeWait.Seconds())
	}
	tw.Flush()
}

// FleetAtScaleTransport is FleetAtScale with every session's requests
// routed through per-session transport connections of the given protocol
// (loss draws reseeded per session) on TransportRTT access links.
func FleetAtScaleTransport(n, shards int, proto netsim.Protocol) (*fleet.Result, error) {
	cfg := defaultFleetConfig(n, cdnsim.Demuxed)
	cfg.CellSessions = FleetCellSessions
	cfg.Shards = shards
	cfg.MaxRetained = -1
	tc := transportConfig(proto, 0)
	cfg.Transport = &tc
	cfg.AccessRTT = TransportRTT
	return fleet.Run(cfg)
}
