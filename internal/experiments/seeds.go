package experiments

import (
	"fmt"
	"time"

	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/runpool"
	"demuxabr/internal/stats"
	"demuxabr/internal/trace"
)

// SeedSummary aggregates one player's outcomes across many random network
// traces — the distributional view a single-trace comparison lacks.
type SeedSummary struct {
	Model     string
	QoE       stats.Summary
	Rebuffer  stats.Summary // seconds
	VideoKbps stats.Summary
}

// SeedSweep runs every player model over n seeded random-walk traces
// (400–2500 Kbps, 4 s re-draws) and summarizes the distributions. Each
// (model, seed) run is deterministic, so the whole sweep is reproducible.
func SeedSweep(n int) ([]SeedSummary, error) { return SeedSweepParallel(n, 0) }

// SeedSweepParallel is SeedSweep with an explicit worker count (0 =
// GOMAXPROCS, 1 = serial). Every (seed, model) pair is one job with its
// own engine and its own trace rebuilt from the seed; the per-model
// sample vectors are then accumulated in submission order (seeds outer,
// models inner), so the summaries match the serial sweep exactly.
func SeedSweepParallel(n, parallel int) ([]SeedSummary, error) {
	if n <= 0 {
		n = 10
	}
	content := media.DramaShow()
	specs, allowed, err := modelSpecs(content)
	if err != nil {
		return nil, err
	}
	mets, err := runpool.Map(parallel, n*len(specs), func(i int) (qoe.Metrics, error) {
		seed, mi := i/len(specs), i%len(specs)
		// The random walk is a pure function of the seed, so rebuilding it
		// per job reproduces the shared-profile serial sweep bit-for-bit.
		profile := trace.RandomWalk(int64(seed)+1, media.Kbps(400), media.Kbps(2500), 4*time.Second, time.Minute)
		m := specs[mi].build()
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, profile)
		res, err := player.Run(link, player.Config{Content: content, Model: m})
		if err != nil {
			return qoe.Metrics{}, fmt.Errorf("seed %d %s: %w", seed, m.Name(), err)
		}
		if !res.Ended {
			return qoe.Metrics{}, fmt.Errorf("seed %d %s: did not finish", seed, m.Name())
		}
		return qoe.Compute(res, content, allowed, qoe.DefaultWeights()), nil
	})
	if err != nil {
		return nil, err
	}
	acc := make([]struct{ qoe, rebuffer, video []float64 }, len(specs))
	for i, met := range mets {
		a := &acc[i%len(specs)]
		a.qoe = append(a.qoe, met.Score)
		a.rebuffer = append(a.rebuffer, met.RebufferTime.Seconds())
		a.video = append(a.video, met.AvgVideoBitrate.Kbps())
	}
	out := make([]SeedSummary, 0, len(specs))
	for mi, sp := range specs {
		a := acc[mi]
		out = append(out, SeedSummary{
			Model:     sp.name,
			QoE:       stats.Summarize(a.qoe),
			Rebuffer:  stats.Summarize(a.rebuffer),
			VideoKbps: stats.Summarize(a.video),
		})
	}
	return out, nil
}

// StartupPoint records one player's time to first frame on a fixed link.
type StartupPoint struct {
	Model        string
	StartupDelay time.Duration
}

// StartupDelays measures time-to-first-frame for every player model at the
// given link rate. Startup is dominated by the initial selection: models
// that start conservative (lowest combination) begin fastest; ExoPlayer's
// 1 Mbps initial estimate starts mid-ladder and pays for it on slow links.
func StartupDelays(kbps float64) ([]StartupPoint, error) {
	return StartupDelaysParallel(kbps, 0)
}

// StartupDelaysParallel is StartupDelays with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial).
func StartupDelaysParallel(kbps float64, parallel int) ([]StartupPoint, error) {
	content := media.DramaShow()
	specs, _, err := modelSpecs(content)
	if err != nil {
		return nil, err
	}
	return runpool.Map(parallel, len(specs), func(i int) (StartupPoint, error) {
		m := specs[i].build()
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fixed(media.Kbps(kbps)))
		res, err := player.Run(link, player.Config{Content: content, Model: m})
		if err != nil {
			return StartupPoint{}, err
		}
		if !res.Ended {
			return StartupPoint{}, fmt.Errorf("experiments: %s did not finish", m.Name())
		}
		return StartupPoint{Model: m.Name(), StartupDelay: res.StartupDelay}, nil
	})
}

// ParetoPoint is one cell of the safety-factor sweep: how the §4 player's
// single most influential knob trades quality against rebuffering risk.
type ParetoPoint struct {
	SafetyFactor float64
	Outcome      Outcome
}

// SafetyFactorSweep runs the best-practice player across safety factors on
// the Fig 3 link — the frontier an operator picks an operating point from.
func SafetyFactorSweep(factors []float64) ([]ParetoPoint, error) {
	return SafetyFactorSweepParallel(factors, 0)
}

// SafetyFactorSweepParallel is SafetyFactorSweep with an explicit worker
// count (0 = GOMAXPROCS, 1 = serial). The master playlist round-trip is
// factor-independent and done once; each factor's session is one job.
func SafetyFactorSweepParallel(factors []float64, parallel int) ([]ParetoPoint, error) {
	content := media.DramaShow()
	combos, _, err := hlsMaster(content, media.HSub(content), nil)
	if err != nil {
		return nil, err
	}
	return runpool.Map(parallel, len(factors), func(i int) (ParetoPoint, error) {
		f := factors[i]
		model := jointabr.New(combos, jointabr.WithSafetyFactor(f))
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fig3VaryingAvg600())
		res, err := player.Run(link, player.Config{Content: content, Model: model})
		if err != nil {
			return ParetoPoint{}, err
		}
		if !res.Ended {
			return ParetoPoint{}, fmt.Errorf("experiments: safety factor %v did not finish", f)
		}
		return ParetoPoint{
			SafetyFactor: f,
			Outcome: Outcome{
				Model:   model.Name(),
				Result:  res,
				Metrics: qoe.Compute(res, content, combos, qoe.DefaultWeights()),
			},
		}, nil
	})
}
