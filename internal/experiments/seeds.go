package experiments

import (
	"fmt"
	"time"

	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/stats"
	"demuxabr/internal/trace"
)

// SeedSummary aggregates one player's outcomes across many random network
// traces — the distributional view a single-trace comparison lacks.
type SeedSummary struct {
	Model     string
	QoE       stats.Summary
	Rebuffer  stats.Summary // seconds
	VideoKbps stats.Summary
}

// SeedSweep runs every player model over n seeded random-walk traces
// (400–2500 Kbps, 4 s re-draws) and summarizes the distributions. Each
// (model, seed) run is deterministic, so the whole sweep is reproducible.
func SeedSweep(n int) ([]SeedSummary, error) {
	if n <= 0 {
		n = 10
	}
	content := media.DramaShow()
	// One model list per seed (models are stateful), but a stable name
	// order for the output.
	var names []string
	acc := map[string]*struct{ qoe, rebuffer, video []float64 }{}
	for seed := 0; seed < n; seed++ {
		profile := trace.RandomWalk(int64(seed)+1, media.Kbps(400), media.Kbps(2500), 4*time.Second, time.Minute)
		models, allowed, err := buildModels(content)
		if err != nil {
			return nil, err
		}
		for _, m := range models {
			eng := netsim.NewEngine()
			link := netsim.NewLink(eng, profile)
			res, err := player.Run(link, player.Config{Content: content, Model: m})
			if err != nil {
				return nil, fmt.Errorf("seed %d %s: %w", seed, m.Name(), err)
			}
			if !res.Ended {
				return nil, fmt.Errorf("seed %d %s: did not finish", seed, m.Name())
			}
			met := qoe.Compute(res, content, allowed, qoe.DefaultWeights())
			a, ok := acc[m.Name()]
			if !ok {
				a = &struct{ qoe, rebuffer, video []float64 }{}
				acc[m.Name()] = a
				names = append(names, m.Name())
			}
			a.qoe = append(a.qoe, met.Score)
			a.rebuffer = append(a.rebuffer, met.RebufferTime.Seconds())
			a.video = append(a.video, met.AvgVideoBitrate.Kbps())
		}
	}
	out := make([]SeedSummary, 0, len(names))
	for _, name := range names {
		a := acc[name]
		out = append(out, SeedSummary{
			Model:     name,
			QoE:       stats.Summarize(a.qoe),
			Rebuffer:  stats.Summarize(a.rebuffer),
			VideoKbps: stats.Summarize(a.video),
		})
	}
	return out, nil
}

// StartupPoint records one player's time to first frame on a fixed link.
type StartupPoint struct {
	Model        string
	StartupDelay time.Duration
}

// StartupDelays measures time-to-first-frame for every player model at the
// given link rate. Startup is dominated by the initial selection: models
// that start conservative (lowest combination) begin fastest; ExoPlayer's
// 1 Mbps initial estimate starts mid-ladder and pays for it on slow links.
func StartupDelays(kbps float64) ([]StartupPoint, error) {
	content := media.DramaShow()
	models, _, err := buildModels(content)
	if err != nil {
		return nil, err
	}
	var out []StartupPoint
	for _, m := range models {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fixed(media.Kbps(kbps)))
		res, err := player.Run(link, player.Config{Content: content, Model: m})
		if err != nil {
			return nil, err
		}
		if !res.Ended {
			return nil, fmt.Errorf("experiments: %s did not finish", m.Name())
		}
		out = append(out, StartupPoint{Model: m.Name(), StartupDelay: res.StartupDelay})
	}
	return out, nil
}

// ParetoPoint is one cell of the safety-factor sweep: how the §4 player's
// single most influential knob trades quality against rebuffering risk.
type ParetoPoint struct {
	SafetyFactor float64
	Outcome      Outcome
}

// SafetyFactorSweep runs the best-practice player across safety factors on
// the Fig 3 link — the frontier an operator picks an operating point from.
func SafetyFactorSweep(factors []float64) ([]ParetoPoint, error) {
	content := media.DramaShow()
	var out []ParetoPoint
	for _, f := range factors {
		combos, _, err := hlsMaster(content, media.HSub(content), nil)
		if err != nil {
			return nil, err
		}
		model := jointabr.New(combos, jointabr.WithSafetyFactor(f))
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fig3VaryingAvg600())
		res, err := player.Run(link, player.Config{Content: content, Model: model})
		if err != nil {
			return nil, err
		}
		if !res.Ended {
			return nil, fmt.Errorf("experiments: safety factor %v did not finish", f)
		}
		out = append(out, ParetoPoint{
			SafetyFactor: f,
			Outcome: Outcome{
				Model:   model.Name(),
				Result:  res,
				Metrics: qoe.Compute(res, content, combos, qoe.DefaultWeights()),
			},
		})
	}
	return out, nil
}
