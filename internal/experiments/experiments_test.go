package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/trace"
)

// These tests assert the paper's findings end-to-end: manifests are
// generated and re-parsed, player models run in the simulator, and the
// figures' qualitative results must emerge.

func TestFig2aReproduces(t *testing.T) {
	r, err := Fig2a()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Dominant.String(); got != "V3+B2" {
		t.Errorf("dominant combo = %s, want V3+B2", got)
	}
	if !r.BetterFits {
		t.Error("V3+B3 must fit within the 900 Kbps link (declared 601 Kbps)")
	}
	if r.BetterPredetermined {
		t.Error("V3+B3 must NOT be predetermined — that is the finding")
	}
	if r.Outcome.Metrics.StallCount != 0 {
		t.Errorf("unexpected stalls: %d", r.Outcome.Metrics.StallCount)
	}
}

func TestFig2bReproduces(t *testing.T) {
	r, err := Fig2b()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Dominant.String(); got != "V2+C2" {
		t.Errorf("dominant combo = %s, want V2+C2 (low video + high audio)", got)
	}
	if !r.BetterFits || r.BetterPredetermined {
		t.Errorf("V3+C1 should fit (%v) and be excluded (%v)", r.BetterFits, r.BetterPredetermined)
	}
}

func TestFig3Reproduces(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if r.FixedAudio != "A3" {
		t.Errorf("fixed audio = %s, want A3 (first listed)", r.FixedAudio)
	}
	if r.AudioTrackChanges != 0 {
		t.Errorf("audio switches = %d, want 0 (no audio adaptation)", r.AudioTrackChanges)
	}
	if r.Outcome.Metrics.StallCount < 2 {
		t.Errorf("stalls = %d, want several (paper: 5)", r.Outcome.Metrics.StallCount)
	}
	if r.Outcome.Metrics.RebufferTime < 10*time.Second {
		t.Errorf("rebuffer = %v, want substantial (paper: 36.9 s)", r.Outcome.Metrics.RebufferTime)
	}
	if r.OffManifestChunks == 0 {
		t.Error("expected off-manifest combinations (e.g. V1+A3 / V2+A3)")
	}
}

func TestExoHLSLowFirstReproduces(t *testing.T) {
	r, err := ExoHLSLowFirst()
	if err != nil {
		t.Fatal(err)
	}
	if r.FixedAudio != "A1" {
		t.Errorf("fixed audio = %s, want A1", r.FixedAudio)
	}
	if r.AudioTrackChanges != 0 {
		t.Errorf("audio switches = %d, want 0", r.AudioTrackChanges)
	}
	if r.Outcome.Metrics.StallCount != 0 {
		t.Errorf("stalls = %d, want 0 at 5 Mbps", r.Outcome.Metrics.StallCount)
	}
	// Despite 5 Mbps, audio QoE is the floor: the A1 average bitrate.
	if r.Outcome.Metrics.AvgAudioBitrate != media.Kbps(128) {
		t.Errorf("avg audio = %v, want 128 Kbps (pinned A1)", r.Outcome.Metrics.AvgAudioBitrate)
	}
}

func TestFig4aReproduces(t *testing.T) {
	r, err := Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	if r.AnyValidSample {
		t.Error("no interval at 1 Mbps may pass the 16 KB filter")
	}
	if r.EstimateEnd != media.Kbps(500) {
		t.Errorf("final estimate = %v, want the stuck 500 Kbps default", r.EstimateEnd)
	}
	if got := r.Dominant.String(); got != "V2+A2" {
		t.Errorf("dominant combo = %s, want V2+A2", got)
	}
	if r.Outcome.Metrics.StallCount != 0 {
		t.Errorf("stalls = %d, want 0 (V2+A2 under 1 Mbps)", r.Outcome.Metrics.StallCount)
	}
}

func TestFig4bReproduces(t *testing.T) {
	r, err := Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	if !r.AnyValidSample {
		t.Fatal("high-phase intervals must pass the filter")
	}
	if r.EstimateEnd < media.Kbps(1000) {
		t.Errorf("final estimate = %v, want ~1.1 Mbps (overestimation of a 600 Kbps-average link)", r.EstimateEnd)
	}
	// The paper's selection sequence: V2+A2 under the default estimate,
	// then V3+A3 under the overestimate.
	if got := DominantCombo(r.Outcome.Result).String(); got != "V3+A3" {
		t.Errorf("dominant combo = %s, want V3+A3", got)
	}
	if r.Outcome.Metrics.RebufferTime < 15*time.Second {
		t.Errorf("rebuffer = %v, want heavy (paper: 39 s)", r.Outcome.Metrics.RebufferTime)
	}
	// The selection must climb beyond what the link sustains (paper: V3+A3).
	climbed := false
	for _, cb := range r.Outcome.Result.CombosSelected() {
		if cb.PeakBitrate() >= media.Kbps(1000) {
			climbed = true
		}
	}
	if !climbed {
		t.Error("expected selections beyond 1 Mbps peak under overestimation")
	}
}

func TestFig5Reproduces(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Combos) < 3 {
		t.Errorf("distinct combos = %d (%v), want fluctuation across >= 3", len(r.Combos), r.Combos)
	}
	if len(r.UndesirablePairings) == 0 {
		t.Errorf("expected undesirable pairings (e.g. V2+A3); got combos %v", r.Combos)
	}
	if r.MaxImbalance < 5*time.Second {
		t.Errorf("max buffer imbalance = %v, want > 5 s (Fig 5(b))", r.MaxImbalance)
	}
}

func TestBestPracticeWinsOnPaperScenarios(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			outcomes, err := Compare(s)
			if err != nil {
				t.Fatal(err)
			}
			byName := map[string]Outcome{}
			for _, o := range outcomes {
				byName[o.Model] = o
			}
			bp, ok := byName["bestpractice"]
			if !ok {
				t.Fatal("bestpractice outcome missing")
			}
			// Best practice never leaves the allowed list and keeps buffers
			// balanced to chunk granularity.
			if bp.Metrics.OffManifest != 0 {
				t.Errorf("bestpractice off-manifest = %d, want 0", bp.Metrics.OffManifest)
			}
			if bp.Metrics.MaxImbalance > media.DramaChunkDuration+time.Second {
				t.Errorf("bestpractice imbalance = %v, want <= one chunk", bp.Metrics.MaxImbalance)
			}
			// And it must not be the worst QoE in any paper scenario.
			worst := true
			for name, o := range byName {
				if name != "bestpractice" && o.Metrics.Score >= bp.Metrics.Score {
					worst = worst && true
				} else if name != "bestpractice" {
					worst = false
				}
			}
			if worst && len(byName) > 1 {
				t.Errorf("bestpractice has the worst QoE (%.2f) in %s", bp.Metrics.Score, s.Name)
			}
		})
	}
}

func TestAblationsQuantifyDesignChoices(t *testing.T) {
	// Use the dash.js scenario (tight fixed link) where scheduling and
	// estimation choices matter most.
	s := Scenario{Name: "fixed-700k", Content: media.DramaShow(), Profile: Scenarios()[4].Profile}
	out, err := Ablate(s)
	if err != nil {
		t.Fatal(err)
	}
	full := out["full"]
	if ind, ok := out["independent-scheduling"]; ok {
		if ind.Metrics.MaxImbalance <= full.Metrics.MaxImbalance {
			t.Errorf("independent scheduling imbalance %v <= synced %v",
				ind.Metrics.MaxImbalance, full.Metrics.MaxImbalance)
		}
	} else {
		t.Error("missing independent-scheduling ablation")
	}
	if nal, ok := out["no-allowed-list"]; ok {
		// Without the allowed list the player may stream pairings outside
		// H_sub (counted as off-manifest against H_sub).
		if full.Metrics.OffManifest != 0 {
			t.Errorf("full off-manifest = %d, want 0", full.Metrics.OffManifest)
		}
		_ = nal
	}
	for name, o := range out {
		if !o.Result.Ended {
			t.Errorf("%s did not finish", name)
		}
	}
}

func TestPrintersProduceTables(t *testing.T) {
	c := media.DramaShow()
	var buf bytes.Buffer
	PrintTable1(&buf, c)
	if !strings.Contains(buf.String(), "V6") || !strings.Contains(buf.String(), "1080p") {
		t.Errorf("Table 1 output missing rows:\n%s", buf.String())
	}
	buf.Reset()
	PrintComboTable(&buf, "Table 2", media.HAll(c))
	if !strings.Contains(buf.String(), "V6+A3") {
		t.Errorf("Table 2 output missing rows:\n%s", buf.String())
	}
	buf.Reset()
	outcomes, err := Compare(Scenarios()[0])
	if err != nil {
		t.Fatal(err)
	}
	PrintOutcomes(&buf, "Comparison", outcomes)
	if !strings.Contains(buf.String(), "bestpractice") {
		t.Errorf("comparison output missing models:\n%s", buf.String())
	}
}

func TestBandwidthSweepShapes(t *testing.T) {
	points, err := BandwidthSweep([]float64{400, 1300, 4500})
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]map[float64]Outcome{}
	for _, p := range points {
		if byModel[p.Outcome.Model] == nil {
			byModel[p.Outcome.Model] = map[float64]Outcome{}
		}
		byModel[p.Outcome.Model][p.Kbps] = p.Outcome
	}
	for model, cells := range byModel {
		// More bandwidth must never hurt the selected video quality much:
		// the 4500 Kbps run must reach at least the 400 Kbps run's quality.
		if cells[4500].Metrics.AvgVideoBitrate < cells[400].Metrics.AvgVideoBitrate {
			t.Errorf("%s: video quality decreased with 11x the bandwidth", model)
		}
		// At 4.5 Mbps (1.4x the top combination) nobody should rebuffer
		// for long.
		if cells[4500].Metrics.RebufferTime > 10*time.Second {
			t.Errorf("%s: %.1fs rebuffer at 4.5 Mbps", model, cells[4500].Metrics.RebufferTime.Seconds())
		}
	}
	var buf bytes.Buffer
	PrintSweep(&buf, points)
	if !strings.Contains(buf.String(), "QoE score") || !strings.Contains(buf.String(), "bola-joint") {
		t.Errorf("sweep output incomplete:\n%s", buf.String())
	}
}

func TestFig3RepairedFixesThePathology(t *testing.T) {
	r, err := Fig3Repaired()
	if err != nil {
		t.Fatal(err)
	}
	if r.RecoveredBitrateErr > 0.05 {
		t.Errorf("media-playlist bitrate recovery error = %.3f, want < 5%%", r.RecoveredBitrateErr)
	}
	// The broken player pins audio; the repaired one adapts it.
	if r.Broken.Metrics.AudioSwitches != 0 {
		t.Errorf("broken player audio switches = %d, want 0", r.Broken.Metrics.AudioSwitches)
	}
	if r.Repaired.Metrics.AudioSwitches == 0 &&
		r.Repaired.Metrics.AvgAudioBitrate == media.Kbps(384) {
		t.Error("repaired player still pins A3")
	}
	// The repaired player stays on the manifest and rebuffers less.
	if r.Repaired.Metrics.OffManifest != 0 {
		t.Errorf("repaired off-manifest = %d, want 0", r.Repaired.Metrics.OffManifest)
	}
	if r.Repaired.Metrics.RebufferTime >= r.Broken.Metrics.RebufferTime {
		t.Errorf("repaired rebuffer %v >= broken %v",
			r.Repaired.Metrics.RebufferTime, r.Broken.Metrics.RebufferTime)
	}
}

func TestSplitPathNeedsPerPathBudgets(t *testing.T) {
	r, err := SplitPath()
	if err != nil {
		t.Fatal(err)
	}
	// The aggregate estimate collapses toward the slow audio path,
	// starving the 4 Mbps video path at the bottom rungs.
	if r.Shared.Metrics.AvgVideoBitrate > media.Kbps(250) {
		t.Errorf("shared-budget avg video = %v; expected starvation near V1/V2",
			r.Shared.Metrics.AvgVideoBitrate)
	}
	// The path-aware player exploits the fast video path while keeping
	// audio within its own path (<= A2; 250 Kbps cannot carry A3).
	if r.PathAware.Metrics.AvgVideoBitrate < 2*r.Shared.Metrics.AvgVideoBitrate {
		t.Errorf("path-aware video %v not well above shared %v",
			r.PathAware.Metrics.AvgVideoBitrate, r.Shared.Metrics.AvgVideoBitrate)
	}
	if r.PathAware.Metrics.AvgAudioBitrate > media.Kbps(200) {
		t.Errorf("path-aware avg audio = %v, want <= A2", r.PathAware.Metrics.AvgAudioBitrate)
	}
	// Neither run may trade the quality difference for rebuffering.
	if r.PathAware.Metrics.RebufferTime > 5*time.Second {
		t.Errorf("path-aware rebuffer = %v", r.PathAware.Metrics.RebufferTime)
	}
	if r.PathAware.Metrics.Score <= r.Shared.Metrics.Score {
		t.Errorf("path-aware QoE %.2f <= shared %.2f",
			r.PathAware.Metrics.Score, r.Shared.Metrics.Score)
	}
}

func TestSyncGranularity(t *testing.T) {
	points, err := SyncGranularity([]int{0, 1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// Imbalance grows (weakly) with the window; strict pairing stays within
	// one chunk.
	if points[0].Outcome.Metrics.MaxImbalance > media.DramaChunkDuration+time.Second {
		t.Errorf("strict pairing imbalance = %v", points[0].Outcome.Metrics.MaxImbalance)
	}
	if points[3].Outcome.Metrics.MaxImbalance < points[0].Outcome.Metrics.MaxImbalance {
		t.Errorf("imbalance did not grow with window: %v vs %v",
			points[3].Outcome.Metrics.MaxImbalance, points[0].Outcome.Metrics.MaxImbalance)
	}
	for _, p := range points {
		if !p.Outcome.Result.Ended {
			t.Errorf("window %d did not finish", p.Window)
		}
	}
}

func TestContentCuration(t *testing.T) {
	results, err := ContentCuration()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	music, action := results[0], results[1]
	// Music show: curation must raise audio quality.
	if music.Curated.Metrics.AvgAudioBitrate <= music.Generic.Metrics.AvgAudioBitrate {
		t.Errorf("music curation audio %v <= generic %v",
			music.Curated.Metrics.AvgAudioBitrate, music.Generic.Metrics.AvgAudioBitrate)
	}
	// Action movie: curation must raise video quality.
	if action.Curated.Metrics.AvgVideoBitrate <= action.Generic.Metrics.AvgVideoBitrate {
		t.Errorf("action curation video %v <= generic %v",
			action.Curated.Metrics.AvgVideoBitrate, action.Generic.Metrics.AvgVideoBitrate)
	}
	// Under content-appropriate QoE weights, curation must win both times.
	for _, r := range results {
		if r.Curated.Metrics.Score <= r.Generic.Metrics.Score {
			t.Errorf("%s: curated QoE %.2f <= generic %.2f",
				r.Content, r.Curated.Metrics.Score, r.Generic.Metrics.Score)
		}
		if r.Curated.Metrics.OffManifest != 0 {
			t.Errorf("%s: curated off-manifest = %d", r.Content, r.Curated.Metrics.OffManifest)
		}
	}
}

func TestChunkDurationSweep(t *testing.T) {
	points, err := ChunkDurationSweep([]float64{2, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Longer chunks raise the startup delay (the first pair is bigger).
	if points[2].Outcome.Metrics.StartupDelay <= points[0].Outcome.Metrics.StartupDelay {
		t.Errorf("startup should grow with chunk duration: %v (10s) vs %v (2s)",
			points[2].Outcome.Metrics.StartupDelay, points[0].Outcome.Metrics.StartupDelay)
	}
	// Short chunks pay the RTT tax: effective video quality at 2 s chunks
	// must not exceed the 5 s configuration's.
	if points[0].Outcome.Metrics.AvgVideoBitrate > points[1].Outcome.Metrics.AvgVideoBitrate {
		t.Errorf("2s chunks out-deliver 5s despite the RTT tax: %v vs %v",
			points[0].Outcome.Metrics.AvgVideoBitrate, points[1].Outcome.Metrics.AvgVideoBitrate)
	}
	for _, p := range points {
		if !p.Outcome.Result.Ended || p.Outcome.Metrics.StallCount > 2 {
			t.Errorf("%gs chunks: ended=%v stalls=%d", p.ChunkSeconds,
				p.Outcome.Result.Ended, p.Outcome.Metrics.StallCount)
		}
	}
}

func TestCrossTrafficAdaptation(t *testing.T) {
	results, err := CrossTraffic()
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range results {
		if r.BeforeKbps == 0 || r.DuringKbps == 0 {
			t.Errorf("%s: missing window averages (%v/%v)", name, r.BeforeKbps, r.DuringKbps)
			continue
		}
		if name == "shaka" {
			// Shaka is structurally blind here: a 625 Kbps share moves
			// under 16 KB per 0.125 s interval, so no sample passes its
			// filter and the stale estimate keeps the old bitrate — the
			// Fig 4(a) root cause resurfacing under contention.
			if r.DuringKbps < r.BeforeKbps {
				t.Errorf("shaka shed bitrate (%.0f -> %.0f) although its filter sees no samples",
					r.BeforeKbps, r.DuringKbps)
			}
			if r.Outcome.Metrics.RebufferTime == 0 {
				t.Error("blind shaka should pay in rebuffering")
			}
			continue
		}
		// Every other player must shed video bitrate while the competing
		// flow squeezes its share.
		if r.DuringKbps >= r.BeforeKbps {
			t.Errorf("%s: did not shed bitrate under cross traffic (%.0f -> %.0f Kbps)",
				name, r.BeforeKbps, r.DuringKbps)
		}
	}
	bp, ok := results["bestpractice"]
	if !ok {
		t.Fatal("bestpractice missing")
	}
	if bp.Outcome.Metrics.RebufferTime > 10*time.Second {
		t.Errorf("bestpractice rebuffer under cross traffic = %v", bp.Outcome.Metrics.RebufferTime)
	}
}

func TestMuxedBaseline(t *testing.T) {
	r, err := MuxedBaseline()
	if err != nil {
		t.Fatal(err)
	}
	// Muxed packaging structurally eliminates imbalance.
	if r.Muxed.Metrics.MaxImbalance != 0 {
		t.Errorf("muxed imbalance = %v, want 0", r.Muxed.Metrics.MaxImbalance)
	}
	if r.Demuxed.Metrics.MaxImbalance == 0 {
		t.Error("demuxed imbalance unexpectedly zero (in-flight skew should show)")
	}
	// But it costs storage even for the curated H_sub packaging (audio
	// duplicated per pairing; the full H_all blowup is 3.3x, covered by
	// the cdnsim tests).
	if r.StorageRatio <= 1.05 {
		t.Errorf("storage ratio = %.2f, want > 1.05", r.StorageRatio)
	}
	// QoE must be in the same ballpark (packaging, not adaptation, differs).
	diff := r.Muxed.Metrics.Score - r.Demuxed.Metrics.Score
	if diff < -30 || diff > 30 {
		t.Errorf("packaging changed QoE wildly: muxed %.2f vs demuxed %.2f",
			r.Muxed.Metrics.Score, r.Demuxed.Metrics.Score)
	}
}

func TestVerifyAllPasses(t *testing.T) {
	checks, err := VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if failures := PrintChecks(&buf, checks); failures != 0 {
		t.Errorf("%d paper checks failed:\n%s", failures, buf.String())
	}
	if len(checks) < 10 {
		t.Errorf("only %d checks; expected full coverage", len(checks))
	}
}

func TestLanguageSwitch(t *testing.T) {
	r, err := LanguageSwitch()
	if err != nil {
		t.Fatal(err)
	}
	// After the switch, audio must come from the Spanish ladder.
	finalAudio := ""
	for _, ch := range r.Demuxed.Result.ChunksOf(media.Audio) {
		finalAudio = ch.Track.Language
	}
	if finalAudio != "es" {
		t.Errorf("final demuxed audio language = %q, want es", finalAudio)
	}
	// Demuxed discards only audio; muxed throws the video away too.
	if r.DemuxedDiscarded == 0 || r.MuxedDiscarded == 0 {
		t.Fatalf("discard accounting missing: demuxed=%d muxed=%d",
			r.DemuxedDiscarded, r.MuxedDiscarded)
	}
	if r.MuxedDiscarded < 2*r.DemuxedDiscarded {
		t.Errorf("muxed switch should waste far more: demuxed=%d muxed=%d",
			r.DemuxedDiscarded, r.MuxedDiscarded)
	}
	for name, o := range map[string]Outcome{"demuxed": r.Demuxed, "muxed": r.Muxed} {
		if !o.Result.Ended {
			t.Errorf("%s did not finish", name)
		}
		if len(o.Result.AudioResets) != 1 {
			t.Errorf("%s: %d resets recorded, want 1", name, len(o.Result.AudioResets))
		}
	}
}

func TestSeedSweep(t *testing.T) {
	summaries, err := SeedSweep(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(summaries) < 6 {
		t.Fatalf("models = %d", len(summaries))
	}
	byName := map[string]SeedSummary{}
	for _, s := range summaries {
		if s.QoE.N != 5 {
			t.Errorf("%s: %d samples, want 5", s.Model, s.QoE.N)
		}
		if s.QoE.Min > s.QoE.Max {
			t.Errorf("%s: inverted summary %+v", s.Model, s.QoE)
		}
		byName[s.Model] = s
	}
	// Determinism: repeating the sweep reproduces the summaries exactly.
	again, err := SeedSweep(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range again {
		if byName[s.Model].QoE != s.QoE {
			t.Errorf("%s: sweep not deterministic (%+v vs %+v)", s.Model, byName[s.Model].QoE, s.QoE)
		}
	}
	// Across the seed distribution the best-practice median must beat
	// dash.js's (the churn penalty is structural, not trace luck).
	if byName["bestpractice"].QoE.Median <= byName["dashjs"].QoE.Median {
		t.Errorf("bestpractice median %.2f <= dashjs %.2f",
			byName["bestpractice"].QoE.Median, byName["dashjs"].QoE.Median)
	}
}

func TestStartupDelays(t *testing.T) {
	points, err := StartupDelays(900)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]time.Duration{}
	for _, p := range points {
		if p.StartupDelay <= 0 || p.StartupDelay > 20*time.Second {
			t.Errorf("%s: startup %v out of band", p.Model, p.StartupDelay)
		}
		byName[p.Model] = p.StartupDelay
	}
	// Conservative starters (lowest combo first) must start faster than
	// ExoPlayer's 1 Mbps-initial-estimate mid-ladder start on a 900 Kbps
	// link.
	if byName["bestpractice"] >= byName["exoplayer-dash"] {
		t.Errorf("bestpractice startup %v >= exoplayer-dash %v",
			byName["bestpractice"], byName["exoplayer-dash"])
	}
}

func TestFig4aEstimateSeriesIsFlat(t *testing.T) {
	// The defining visual of Fig 4(a): the estimate line never moves.
	r, err := Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range r.Timeline {
		if p.Estimate != media.Kbps(500) {
			t.Fatalf("estimate at sample %d (%v) = %v, want a flat 500 Kbps line",
				i, p.At, p.Estimate)
		}
	}
}

func TestFig3StallsAlignWithLowPhases(t *testing.T) {
	// The Fig 3(b) shading: every stall must begin inside (or at the edge
	// of) a low-bandwidth phase of the trace.
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	profile := trace.Fig3VaryingAvg600()
	for _, st := range r.Outcome.Result.Stalls {
		if rate := profile.RateAt(st.Start); rate > media.Kbps(200) {
			t.Errorf("stall at %v began under %v of bandwidth — not a low phase", st.Start, rate)
		}
	}
	if len(r.Outcome.Result.Stalls) == 0 {
		t.Fatal("no stalls to check")
	}
}

func TestFig4bEstimateRisesMonotonicallyAfterWarmup(t *testing.T) {
	// Fig 4(b)'s shape: once samples pass the filter the estimate climbs
	// from the default toward the high phase and never falls back below it
	// (the low phase contributes no samples to pull it down).
	r, err := Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	seenAboveDefault := false
	for _, p := range r.Timeline {
		if p.Estimate > media.Kbps(500) {
			seenAboveDefault = true
		}
		if seenAboveDefault && p.Estimate < media.Kbps(500) {
			t.Fatalf("estimate fell back below the default at %v: %v", p.At, p.Estimate)
		}
	}
	if !seenAboveDefault {
		t.Fatal("estimate never left the default")
	}
}

func TestSafetyFactorSweep(t *testing.T) {
	points, err := SafetyFactorSweep([]float64{0.6, 0.8, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// The frontier: quality non-decreasing in the factor, rebuffering
	// risk non-decreasing too (weakly, on this trace).
	if points[0].Outcome.Metrics.AvgVideoBitrate > points[2].Outcome.Metrics.AvgVideoBitrate {
		t.Errorf("quality decreased with a larger factor: %v vs %v",
			points[0].Outcome.Metrics.AvgVideoBitrate, points[2].Outcome.Metrics.AvgVideoBitrate)
	}
	if points[0].Outcome.Metrics.RebufferTime > points[2].Outcome.Metrics.RebufferTime+10*time.Second {
		t.Errorf("rebuffering not ordered: %.1f vs %.1f",
			points[0].Outcome.Metrics.RebufferTime.Seconds(), points[2].Outcome.Metrics.RebufferTime.Seconds())
	}
}
