package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"demuxabr/internal/abr"
	"demuxabr/internal/faults"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/runpool"
	"demuxabr/internal/trace"
)

// ResilienceSeed keys every resilience experiment's fault plan, so the
// sweep and the policy comparison face the identical failure sequence.
const ResilienceSeed = 1009

// RunResilient executes one streaming session under a fault plan. Unlike
// Run it tolerates sessions that do not finish — an abandoned or aborted
// session IS the measurement when faults are in play.
func RunResilient(content *media.Content, profile trace.Profile, model abr.Algorithm, allowed []media.Combo, plan *faults.Plan, pol *faults.Policy) (Outcome, error) {
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, profile)
	res, err := player.Run(link, player.Config{
		Content:    content,
		Model:      model,
		FaultPlan:  plan,
		Robustness: pol,
	})
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: %s: %w", model.Name(), err)
	}
	return Outcome{
		Model:   model.Name(),
		Result:  res,
		Metrics: qoe.Compute(res, content, allowed, qoe.DefaultWeights()),
	}, nil
}

// ResiliencePoint is one (fault rate, player) cell of the resilience sweep.
type ResiliencePoint struct {
	Rate float64
	// RateIndex is the position of Rate in the sweep's ordered rate list;
	// PrintResilience joins columns on it.
	RateIndex int
	Outcome   Outcome
}

// DefaultFaultRates spans clean operation to heavy origin instability.
func DefaultFaultRates() []float64 {
	return []float64{0, 0.005, 0.01, 0.02, 0.05}
}

// ResilienceSweep runs every player model under each per-segment fault
// rate on the varying-600 trace, all with the default robustness policy —
// who degrades how, under identical failure sequences.
func ResilienceSweep(rates []float64) ([]ResiliencePoint, error) {
	return ResilienceSweepParallel(rates, 0)
}

// ResilienceSweepParallel is ResilienceSweep with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial). Fault plans are hash-seeded per (track,
// chunk), so the points are byte-identical at any worker count; they come
// back in the serial order: rates outer, models inner.
func ResilienceSweepParallel(rates []float64, parallel int) ([]ResiliencePoint, error) {
	content := media.DramaShow()
	specs, allowed, err := modelSpecs(content)
	if err != nil {
		return nil, err
	}
	pol := faults.DefaultPolicy()
	return runpool.Map(parallel, len(rates)*len(specs), func(i int) (ResiliencePoint, error) {
		ri, mi := i/len(specs), i%len(specs)
		plan := &faults.Plan{Seed: ResilienceSeed, Rate: rates[ri]}
		out, err := RunResilient(content, trace.Fig3VaryingAvg600(), specs[mi].build(), allowed, plan, &pol)
		if err != nil {
			return ResiliencePoint{}, fmt.Errorf("resilience rate %v: %w", rates[ri], err)
		}
		return ResiliencePoint{Rate: rates[ri], RateIndex: ri, Outcome: out}, nil
	})
}

// PrintResilience renders the sweep as matrices over fault rate: session
// outcome with QoE, rebuffering, and the repair work performed.
func PrintResilience(w io.Writer, points []ResiliencePoint) {
	ncols := 0
	for _, p := range points {
		if p.RateIndex+1 > ncols {
			ncols = p.RateIndex + 1
		}
	}
	rates := make([]float64, ncols)
	var models []string
	seen := map[string]bool{}
	cells := map[string][]Outcome{}
	for _, p := range points {
		rates[p.RateIndex] = p.Rate
		if !seen[p.Outcome.Model] {
			seen[p.Outcome.Model] = true
			models = append(models, p.Outcome.Model)
			cells[p.Outcome.Model] = make([]Outcome, ncols)
		}
		cells[p.Outcome.Model][p.RateIndex] = p.Outcome
	}
	write := func(title string, value func(Outcome) string) {
		fmt.Fprintln(w, title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "Model")
		for _, r := range rates {
			fmt.Fprintf(tw, "\t%.1f%%", r*100)
		}
		fmt.Fprintln(tw)
		for _, m := range models {
			fmt.Fprint(tw, m)
			for i := range rates {
				fmt.Fprintf(tw, "\t%s", value(cells[m][i]))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	write("QoE score by per-segment fault rate (abort = session cut short):", func(o Outcome) string {
		if o.Result.Aborted {
			return "abort"
		}
		return fmt.Sprintf("%.2f", o.Metrics.Score)
	})
	fmt.Fprintln(w)
	write("Rebuffering seconds by fault rate:", func(o Outcome) string {
		return fmt.Sprintf("%.1f", o.Result.RebufferTime().Seconds())
	})
	fmt.Fprintln(w)
	write("Repair work (faults/retries/failovers) by fault rate:", func(o Outcome) string {
		return fmt.Sprintf("%d/%d/%d", len(o.Result.Faults), o.Result.Retries, len(o.Result.Failovers))
	})
}

// PolicyResilience is the best-practice player at a 1% per-segment fault
// rate on the varying-600 trace, with the robustness policy on versus off
// — the paper's "best practices" extended to the error path: the same
// player under the same failure sequence either finishes or dies,
// depending only on its download-error handling.
func PolicyResilience() (on, off Outcome, err error) {
	content := media.DramaShow()
	specs, allowed, err := modelSpecs(content)
	if err != nil {
		return Outcome{}, Outcome{}, err
	}
	var build func() abr.Algorithm
	for _, sp := range specs {
		if sp.name == "bestpractice" {
			build = sp.build
		}
	}
	plan := &faults.Plan{Seed: ResilienceSeed, Rate: 0.01}
	pol := faults.DefaultPolicy()
	on, err = RunResilient(content, trace.Fig3VaryingAvg600(), build(), allowed, plan, &pol)
	if err != nil {
		return Outcome{}, Outcome{}, err
	}
	off, err = RunResilient(content, trace.Fig3VaryingAvg600(), build(), allowed, plan, nil)
	if err != nil {
		return Outcome{}, Outcome{}, err
	}
	return on, off, nil
}

// PrintPolicyResilience renders the on/off comparison.
func PrintPolicyResilience(w io.Writer, on, off Outcome) {
	row := func(label string, o Outcome) {
		status := "completed"
		if o.Result.Aborted {
			status = "ABORTED (" + o.Result.AbortReason + ")"
		} else if !o.Result.Ended {
			status = "did not finish"
		}
		fmt.Fprintf(w, "  %-10s %s\n", label+":", status)
		fmt.Fprintf(w, "             qoe %.2f, %d stalls (%.1fs), %d faults, %d retries, %d failovers, %.1f KB wasted\n",
			o.Metrics.Score, len(o.Result.Stalls), o.Result.RebufferTime().Seconds(),
			len(o.Result.Faults), o.Result.Retries, len(o.Result.Failovers),
			float64(o.Result.WastedFaultBytes())/1000)
	}
	fmt.Fprintf(w, "best-practice player, 1%% per-segment faults, varying-600 trace (seed %d):\n", ResilienceSeed)
	row("policy on", on)
	row("policy off", off)
}
