package experiments

import (
	"bytes"
	"strings"
	"testing"

	"demuxabr/internal/media"
)

// TestLadderCross is the acceptance check for the content-aware chunking
// pipeline: on demuxed A/V with deliberately misaligned per-type
// boundaries, the shaped preparation must beat the fixed-uniform baseline
// of the SAME content (same scene signal, same ladder) on the RTT-priced
// link — fewer requests and scene-snapped boundaries are worth real QoE,
// not just offline objective points.
func TestLadderCross(t *testing.T) {
	cells, plan, err := LadderCross(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Scenes) == 0 {
		t.Fatal("plan carries no scene signal")
	}

	byKey := map[string]LadderCell{}
	for _, c := range cells {
		byKey[c.Variant+"/"+c.Outcome.Model] = c
	}
	fixed, ok := byKey["fixed-uniform/dashjs"]
	if !ok {
		t.Fatal("missing fixed-uniform/dashjs cell")
	}
	shaped, ok := byKey["shaped-chunks/dashjs"]
	if !ok {
		t.Fatal("missing shaped-chunks/dashjs cell")
	}

	// The preparations must actually differ in the dimension under study.
	if !fixed.Aligned {
		t.Error("fixed-uniform preparation lost its aligned uniform timeline")
	}
	if shaped.Aligned {
		t.Error("shaped preparation's A/V timelines are aligned; shaping must diverge them")
	}
	fixedReqs := fixed.VideoChunks + fixed.AudioChunks
	shapedReqs := shaped.VideoChunks + shaped.AudioChunks
	if shapedReqs >= fixedReqs {
		t.Errorf("shaped preparation issues %d requests, want fewer than the uniform %d", shapedReqs, fixedReqs)
	}

	// The QoE delta: same ladder, same scene signal, same link — the only
	// difference is where the chunk boundaries sit.
	if s, f := shaped.Outcome.Metrics.Score, fixed.Outcome.Metrics.Score; s <= f {
		t.Errorf("shaped chunking QoE %.3f does not beat fixed-uniform %.3f on the RTT-priced link", s, f)
	}
	if s, f := shaped.Outcome.Metrics.AvgVideoBitrate, fixed.Outcome.Metrics.AvgVideoBitrate; s <= f {
		t.Errorf("shaped chunking avg video %.0fK does not beat fixed-uniform %.0fK", s.Kbps(), f.Kbps())
	}

	// Every cell must come from a finished session on the intended models.
	for _, c := range cells {
		if !c.Outcome.Result.Ended {
			t.Errorf("%s/%s: session did not finish", c.Variant, c.Outcome.Model)
		}
		if got := len(c.Outcome.Result.ChunksOf(media.Video)); got != c.VideoChunks {
			t.Errorf("%s/%s: fetched %d video chunks, want %d", c.Variant, c.Outcome.Model, got, c.VideoChunks)
		}
		if got := len(c.Outcome.Result.ChunksOf(media.Audio)); got != c.AudioChunks {
			t.Errorf("%s/%s: fetched %d audio chunks, want %d", c.Variant, c.Outcome.Model, got, c.AudioChunks)
		}
	}

	// The printed table carries every cell.
	var buf bytes.Buffer
	PrintLadder(&buf, cells, plan)
	for _, want := range []string{"fixed-uniform", "shaped-chunks", "shaped-ladder", "dashjs", "bestpractice-independent"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("PrintLadder output missing %q", want)
		}
	}
}

// TestLadderParallelDeterminism pins the -parallel contract for the
// family: the cross-product table is byte-identical at any worker count.
func TestLadderParallelDeterminism(t *testing.T) {
	serialCells, serialPlan, err := LadderCross(1)
	if err != nil {
		t.Fatal(err)
	}
	parCells, parPlan, err := LadderCross(8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	PrintLadder(&a, serialCells, serialPlan)
	PrintLadder(&b, parCells, parPlan)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("ladder table differs between -parallel 1 and -parallel 8:\n%s\nvs\n%s", a.String(), b.String())
	}
}
