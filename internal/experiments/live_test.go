package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"demuxabr/internal/netsim"
)

// TestLiveComparisonDeterminism pins the byte-identical contract for the
// live families: neither the worker count nor the repetition may change a
// single byte of the rendered report.
func TestLiveComparisonDeterminism(t *testing.T) {
	serial, err := LiveComparisonParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LiveComparisonParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("live comparison differs between serial and parallel runs")
	}
	tserial, err := LiveTransportParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	tparallel, err := LiveTransportParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tserial, tparallel) {
		t.Fatal("live transport comparison differs between serial and parallel runs")
	}
	again, err := LiveComparisonParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	tagain, err := LiveTransportParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	PrintLive(&a, parallel, tparallel)
	PrintLive(&b, again, tagain)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("live report is not byte-identical across repeats")
	}
}

// TestLiveModelOrdering is the acceptance check for the low-latency trio:
// LoL+ holds latency closest to target with the fewest stalls, L2A sits
// between on both axes (it buys latency with extra down-switches and
// stalls), and the latency-blind default drifts furthest while keeping the
// most video quality.
func TestLiveModelOrdering(t *testing.T) {
	cells, err := LiveComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(LiveModels()) {
		t.Fatalf("got %d cells, want %d", len(cells), len(LiveModels()))
	}
	byModel := map[string]LiveCell{}
	for _, c := range cells {
		byModel[string(c.Model)] = c
	}
	def, l2a, lolp := byModel["ll-default"], byModel["ll-l2a"], byModel["ll-lolp"]
	t.Logf("default: err=%v stalls=%d vq=%.2f | l2a: err=%v stalls=%d vq=%.2f | lolp: err=%v stalls=%d vq=%.2f",
		def.LatencyError(), def.Stalls, def.VideoQuality,
		l2a.LatencyError(), l2a.Stalls, l2a.VideoQuality,
		lolp.LatencyError(), lolp.Stalls, lolp.VideoQuality)
	if !(lolp.LatencyError() < l2a.LatencyError() && l2a.LatencyError() < def.LatencyError()) {
		t.Errorf("latency error not ordered lolp < l2a < default: %v, %v, %v",
			lolp.LatencyError(), l2a.LatencyError(), def.LatencyError())
	}
	if !(lolp.Stalls < l2a.Stalls && l2a.Stalls < def.Stalls) {
		t.Errorf("stalls not ordered lolp < l2a < default: %d, %d, %d",
			lolp.Stalls, l2a.Stalls, def.Stalls)
	}
	if !(def.VideoQuality > l2a.VideoQuality && def.VideoQuality > lolp.VideoQuality) {
		t.Errorf("latency-blind default should keep the most quality: default %.3f, l2a %.3f, lolp %.3f",
			def.VideoQuality, l2a.VideoQuality, lolp.VideoQuality)
	}
	if !(lolp.Score > l2a.Score && lolp.Score > def.Score) {
		t.Errorf("LoL+ should win overall QoE: lolp %.3f, l2a %.3f, default %.3f",
			lolp.Score, l2a.Score, def.Score)
	}
	for _, c := range cells {
		if c.RateChanges == 0 {
			t.Errorf("%s: catch-up controller never adjusted the playback rate", c.Model)
		}
		if c.MeanRate <= 1.0 {
			t.Errorf("%s: mean playback rate %.4f not above 1.0 despite latency pressure", c.Model, c.MeanRate)
		}
	}
}

// TestLiveDeltaOrdering is the acceptance check for the live packaging
// family: the demuxed-over-muxed penalty must widen under HTTP/1.1 and
// narrow under HTTP/3 when the session holds a latency target. The
// connection-stall component separates all three generations strictly.
func TestLiveDeltaOrdering(t *testing.T) {
	cells, err := LiveTransport()
	if err != nil {
		t.Fatal(err)
	}
	d := LiveTransportDeltas(cells)
	h1, h2, h3 := d[netsim.H1], d[netsim.H2], d[netsim.H3]
	t.Logf("deltas: h1 lat=%v dead=%v stall=%v | h2 lat=%v dead=%v stall=%v | h3 lat=%v dead=%v stall=%v",
		h1.Latency, h1.DeadAir, h1.ConnStall, h2.Latency, h2.DeadAir, h2.ConnStall, h3.Latency, h3.DeadAir, h3.ConnStall)
	if h1.Total() <= h3.Total() {
		t.Errorf("live demuxed penalty does not widen under h1 vs h3: %v <= %v", h1.Total(), h3.Total())
	}
	if h1.Latency <= h3.Latency {
		t.Errorf("live latency penalty does not widen under h1 vs h3: %v <= %v", h1.Latency, h3.Latency)
	}
	if !(h1.ConnStall > h2.ConnStall && h2.ConnStall > h3.ConnStall) {
		t.Errorf("conn-stall deltas not ordered h1 > h2 > h3: %v, %v, %v",
			h1.ConnStall, h2.ConnStall, h3.ConnStall)
	}
	for _, p := range TransportProtocols() {
		if d[p].Latency <= 0 {
			t.Errorf("demuxed free-running should cost live-edge latency under %s, got %v", p, d[p].Latency)
		}
		if d[p].DeadAir <= 0 {
			t.Errorf("demuxed free-running should cost dead air under %s, got %v", p, d[p].DeadAir)
		}
	}
	// Overrun recovery: only the free-running demuxed sessions drift far
	// enough past the threshold to resync; the pinned muxed baseline never
	// does, so skipped media is a demux-specific live cost here.
	for _, c := range cells {
		switch c.Scenario {
		case "demux-independent":
			if c.Resyncs == 0 {
				t.Errorf("demux-independent under %s: expected live-edge resyncs, got none", c.Protocol)
			}
			if c.Skipped <= 0 {
				t.Errorf("demux-independent under %s: resyncs should discard media, skipped %v", c.Protocol, c.Skipped)
			}
		case "muxed":
			if c.Resyncs != 0 {
				t.Errorf("muxed under %s: unexpected resyncs %d", c.Protocol, c.Resyncs)
			}
		}
	}
}
