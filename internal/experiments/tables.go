package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"demuxabr/internal/media"
)

// PrintTable1 renders the Table 1 ladder of a content asset.
func PrintTable1(w io.Writer, c *media.Content) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Track\tAvg (Kbps)\tPeak (Kbps)\tDeclared (Kbps)\tDetail")
	for _, t := range c.AudioTracks {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%d channels, %d kHz\n",
			t.ID, t.AvgBitrate.Kbps(), t.PeakBitrate.Kbps(), t.DeclaredBitrate.Kbps(),
			t.Channels, t.SampleRateHz/1000)
	}
	for _, t := range c.VideoTracks {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%s\n",
			t.ID, t.AvgBitrate.Kbps(), t.PeakBitrate.Kbps(), t.DeclaredBitrate.Kbps(), t.Resolution)
	}
	tw.Flush()
}

// ComboRow is one row of Tables 2/3.
type ComboRow struct {
	Name    string
	AvgKbps float64
	PkKbps  float64
}

// ComboRows converts a combination list into table rows.
func ComboRows(combos []media.Combo) []ComboRow {
	rows := make([]ComboRow, len(combos))
	for i, cb := range combos {
		rows[i] = ComboRow{Name: cb.String(), AvgKbps: cb.AvgBitrate().Kbps(), PkKbps: cb.PeakBitrate().Kbps()}
	}
	return rows
}

// PrintComboTable renders Table 2 (H_all) or Table 3 (H_sub).
func PrintComboTable(w io.Writer, title string, combos []media.Combo) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Combination\tAverage Bitrate (Kbps)\tPeak Bitrate (Kbps)")
	for _, r := range ComboRows(combos) {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\n", r.Name, r.AvgKbps, r.PkKbps)
	}
	tw.Flush()
}

// PrintSeedSummaries renders the seed-sweep distributional view, one line
// per model in sweep order.
func PrintSeedSummaries(w io.Writer, summaries []SeedSummary) {
	for _, s := range summaries {
		fmt.Fprintf(w, "  %-16s qoe med %6.2f  [p10 %6.2f .. p90 %6.2f]   rebuffer med %5.1fs   video med %4.0fK\n",
			s.Model, s.QoE.Median, s.QoE.P10, s.QoE.P90, s.Rebuffer.Median, s.VideoKbps.Median)
	}
}

// PrintOutcomes renders a comparison table of session outcomes.
func PrintOutcomes(w io.Writer, title string, outcomes []Outcome) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Model\tAvgVideo\tAvgAudio\tStalls\tRebuffer\tSwitches(V/A)\tOff-manifest\tMaxImbalance\tQoE")
	for _, o := range outcomes {
		m := o.Metrics
		fmt.Fprintf(tw, "%s\t%.0fK\t%.0fK\t%d\t%.1fs\t%d/%d\t%d\t%.1fs\t%.2f\n",
			o.Model, m.AvgVideoBitrate.Kbps(), m.AvgAudioBitrate.Kbps(),
			m.StallCount, m.RebufferTime.Seconds(),
			m.VideoSwitches, m.AudioSwitches, m.OffManifest,
			m.MaxImbalance.Seconds(), m.Score)
	}
	tw.Flush()
}
