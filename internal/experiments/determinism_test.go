package experiments

import (
	"bytes"
	"testing"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/report"
	"demuxabr/internal/trace"
)

// TestDeterministicReport is the replay-determinism regression test the
// vetabr suite exists to protect: one full scenario — seeded random-walk
// trace, every player model, full JSON report — run repeatedly must
// produce byte-identical output. Any wall-clock read, global randomness,
// or map-ordered serialization anywhere in the stack shows up here as a
// byte diff.
func TestDeterministicReport(t *testing.T) {
	const seed = 7
	render := func() []byte {
		content := media.DramaShow()
		profile := trace.RandomWalk(seed, media.Kbps(400), media.Kbps(2500), 4*time.Second, time.Minute)
		models, allowed, err := buildModels(content)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, m := range models {
			out, err := Run(content, profile, m, allowed)
			if err != nil {
				t.Fatal(err)
			}
			doc := report.FromResult(content.Name, out.Result, out.Metrics)
			if err := doc.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	first := render()
	if len(first) == 0 {
		t.Fatal("empty report")
	}
	for i := 0; i < 2; i++ {
		if again := render(); !bytes.Equal(first, again) {
			t.Fatalf("run %d produced different report bytes (len %d vs %d): simulator or serialization is non-deterministic", i+2, len(again), len(first))
		}
	}
}

// TestParallelEquivalenceBandwidthSweep is the runpool determinism gate
// for the sweep fleet: the rendered report at -parallel 1 (the literal
// serial loop) and at GOMAXPROCS workers must be byte-identical. Ordered
// collection plus per-job engines is exactly what makes this hold; any
// shared mutable state or completion-order dependence shows up here.
func TestParallelEquivalenceBandwidthSweep(t *testing.T) {
	kbps := []float64{600, 2000}
	render := func(parallel int) []byte {
		points, err := BandwidthSweepParallel(kbps, parallel)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		PrintSweep(&buf, points)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(0)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel sweep diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestParallelEquivalenceSeedSweep: same gate for the seed fleet, whose
// aggregation (per-model sample vectors in seed order) is the most
// order-sensitive collection in the repo.
func TestParallelEquivalenceSeedSweep(t *testing.T) {
	render := func(parallel int) []byte {
		summaries, err := SeedSweepParallel(3, parallel)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		PrintSeedSummaries(&buf, summaries)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(0)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel seed sweep diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestParallelEquivalenceCompareAndAblate covers the remaining fleet
// runners at a cheap scenario.
func TestParallelEquivalenceCompareAndAblate(t *testing.T) {
	s := Scenarios()[0]
	serialOut, err := CompareParallel(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallelOut, err := CompareParallel(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	var serialBuf, parallelBuf bytes.Buffer
	PrintOutcomes(&serialBuf, s.Name, serialOut)
	PrintOutcomes(&parallelBuf, s.Name, parallelOut)
	if !bytes.Equal(serialBuf.Bytes(), parallelBuf.Bytes()) {
		t.Fatalf("parallel Compare diverges from serial:\n%s\nvs\n%s", serialBuf.Bytes(), parallelBuf.Bytes())
	}
	serialAb, err := AblateParallel(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallelAb, err := AblateParallel(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialAb) != len(parallelAb) {
		t.Fatalf("ablation counts differ: %d vs %d", len(serialAb), len(parallelAb))
	}
	for name, o := range serialAb {
		p, ok := parallelAb[name]
		if !ok {
			t.Fatalf("parallel ablation missing %q", name)
		}
		if o.Metrics != p.Metrics {
			t.Errorf("ablation %q: serial metrics %+v != parallel %+v", name, o.Metrics, p.Metrics)
		}
	}
}
