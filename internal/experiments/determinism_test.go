package experiments

import (
	"bytes"
	"testing"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/report"
	"demuxabr/internal/trace"
)

// TestDeterministicReport is the replay-determinism regression test the
// vetabr suite exists to protect: one full scenario — seeded random-walk
// trace, every player model, full JSON report — run repeatedly must
// produce byte-identical output. Any wall-clock read, global randomness,
// or map-ordered serialization anywhere in the stack shows up here as a
// byte diff.
func TestDeterministicReport(t *testing.T) {
	const seed = 7
	render := func() []byte {
		content := media.DramaShow()
		profile := trace.RandomWalk(seed, media.Kbps(400), media.Kbps(2500), 4*time.Second, time.Minute)
		models, allowed, err := buildModels(content)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, m := range models {
			out, err := Run(content, profile, m, allowed)
			if err != nil {
				t.Fatal(err)
			}
			doc := report.FromResult(content.Name, out.Result, out.Metrics)
			if err := doc.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	first := render()
	if len(first) == 0 {
		t.Fatal("empty report")
	}
	for i := 0; i < 2; i++ {
		if again := render(); !bytes.Equal(first, again) {
			t.Fatalf("run %d produced different report bytes (len %d vs %d): simulator or serialization is non-deterministic", i+2, len(again), len(first))
		}
	}
}
