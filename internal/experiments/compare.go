package experiments

import (
	"fmt"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/dashjs"
	"demuxabr/internal/abr/exoplayer"
	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/abr/shaka"
	"demuxabr/internal/media"
	"demuxabr/internal/runpool"
	"demuxabr/internal/trace"
)

// Scenario names one network condition from the paper's experiments, used
// to compare all players head-to-head.
type Scenario struct {
	// Name identifies the scenario.
	Name string
	// Content is the asset.
	Content *media.Content
	// Profile is the link condition.
	Profile trace.Profile
}

// Scenarios returns the paper's network conditions as head-to-head arenas.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "fixed-900k (Fig 2)", Content: media.DramaShow(), Profile: trace.Fig2Bandwidth()},
		{Name: "varying-avg-600k (Fig 3)", Content: media.DramaShow(), Profile: trace.Fig3VaryingAvg600()},
		{Name: "fixed-1M (Fig 4a)", Content: media.DramaShow(), Profile: trace.Fig4aBandwidth()},
		{Name: "bimodal-avg-600k (Fig 4b)", Content: media.DramaShow(), Profile: trace.Fig4bBimodal600()},
		{Name: "fixed-700k (Fig 5)", Content: media.DramaShow(), Profile: trace.Fig5Bandwidth()},
	}
}

// modelSpec is a deferred player-model construction: the manifest parsing
// is done once, the (stateful) model is built per session. Fleet runners
// hand each runpool job its own build() call so sessions never share
// mutable model state; the ABR constructors copy the combo/ladder slices
// they sort, so sharing the parsed inputs across concurrent builds is
// safe.
type modelSpec struct {
	name  string
	build func() abr.Algorithm
}

// modelSpecs parses the manifests for a content asset once and returns one
// constructor per player model, in the fixed comparison order, plus the
// allowed combination list (H_sub as parsed from the master playlist).
func modelSpecs(c *media.Content) (specs []modelSpec, allowed []media.Combo, err error) {
	video, audio, err := dashLadders(c)
	if err != nil {
		return nil, nil, err
	}
	order := []*media.Track{c.AudioTracks[2], c.AudioTracks[1], c.AudioTracks[0]}
	combos, parsedOrder, err := hlsMaster(c, media.HSub(c), order)
	if err != nil {
		return nil, nil, err
	}
	specs = []modelSpec{
		{"exoplayer-dash", func() abr.Algorithm { return exoplayer.NewDASH(video, audio) }},
		{"exoplayer-hls", func() abr.Algorithm { return exoplayer.NewHLS(combos, parsedOrder) }},
		{"shaka", func() abr.Algorithm { return shaka.NewHLS(combos) }},
		{"dashjs", func() abr.Algorithm { return dashjs.New(video, audio) }},
		{"bestpractice", func() abr.Algorithm { return jointabr.New(combos) }},
		{"bola-joint", func() abr.Algorithm { return jointabr.NewBolaJoint(combos, 0) }},
		{"mpc-joint", func() abr.Algorithm { return jointabr.NewMPC(combos, 0) }},
		{"dynamic-joint", func() abr.Algorithm { return jointabr.NewDynamicJoint(combos) }},
	}
	return specs, combos, nil
}

// buildModels constructs every player model for a content asset, each from
// the manifest a real deployment would give it: ExoPlayer-DASH and dash.js
// from the MPD; ExoPlayer-HLS, Shaka and the best-practice player from the
// H_sub master playlist (A3 listed first, as in Fig. 3).
func buildModels(c *media.Content) (models []abr.Algorithm, allowed []media.Combo, err error) {
	specs, allowed, err := modelSpecs(c)
	if err != nil {
		return nil, nil, err
	}
	models = make([]abr.Algorithm, len(specs))
	for i, sp := range specs {
		models[i] = sp.build()
	}
	return models, allowed, nil
}

// Compare runs every player model (the three studied players plus the
// best-practice design) under one scenario.
func Compare(s Scenario) ([]Outcome, error) { return CompareParallel(s, 0) }

// CompareParallel is Compare with an explicit worker count (0 =
// GOMAXPROCS, 1 = serial). Each model plays its session on its own
// engine; outcomes keep the fixed comparison order.
func CompareParallel(s Scenario, parallel int) ([]Outcome, error) {
	specs, allowed, err := modelSpecs(s.Content)
	if err != nil {
		return nil, err
	}
	return runpool.Map(parallel, len(specs), func(i int) (Outcome, error) {
		out, err := Run(s.Content, s.Profile, specs[i].build(), allowed)
		if err != nil {
			return Outcome{}, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		return out, nil
	})
}

// AblationVariant names one best-practice design choice switched off.
type AblationVariant struct {
	Name  string
	Model abr.Algorithm
}

// ablationSpecs returns deferred constructors for the best-practice player
// and its ablations:
//
//   - full: all four §4 practices;
//   - no-allowed-list: adapts over all 18 combinations (practice 2 off);
//   - separate-estimators: per-type estimates summed (practice 3, shared
//     estimator clause, off);
//   - no-damping: no switch hysteresis (practice 3, stability clause, off);
//   - independent-scheduling: free-running per-type downloads (practice 4
//     off).
func ablationSpecs(c *media.Content) []modelSpec {
	hsub := media.HSub(c)
	hall := media.HAll(c)
	return []modelSpec{
		{"full", func() abr.Algorithm { return jointabr.New(hsub) }},
		{"no-allowed-list", func() abr.Algorithm { return jointabr.New(hall) }},
		{"separate-estimators", func() abr.Algorithm { return jointabr.New(hsub, jointabr.WithSeparateEstimators()) }},
		{"no-damping", func() abr.Algorithm { return jointabr.New(hsub, jointabr.WithoutDamping()) }},
		{"independent-scheduling", func() abr.Algorithm { return jointabr.NewIndependent(hsub) }},
	}
}

// AblationVariants builds the best-practice player and its ablations for a
// content asset.
func AblationVariants(c *media.Content) []AblationVariant {
	specs := ablationSpecs(c)
	out := make([]AblationVariant, len(specs))
	for i, sp := range specs {
		out[i] = AblationVariant{Name: sp.name, Model: sp.build()}
	}
	return out
}

// Ablate runs the best-practice player and all ablations under a scenario.
func Ablate(s Scenario) (map[string]Outcome, error) { return AblateParallel(s, 0) }

// AblateParallel is Ablate with an explicit worker count (0 = GOMAXPROCS,
// 1 = serial).
func AblateParallel(s Scenario, parallel int) (map[string]Outcome, error) {
	allowed := media.HSub(s.Content)
	specs := ablationSpecs(s.Content)
	outs, err := runpool.Map(parallel, len(specs), func(i int) (Outcome, error) {
		o, err := Run(s.Content, s.Profile, specs[i].build(), allowed)
		if err != nil {
			return Outcome{}, fmt.Errorf("ablation %s: %w", specs[i].name, err)
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]Outcome, len(outs))
	for i, o := range outs {
		out[specs[i].name] = o
	}
	return out, nil
}
