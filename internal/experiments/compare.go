package experiments

import (
	"fmt"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/dashjs"
	"demuxabr/internal/abr/exoplayer"
	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/abr/shaka"
	"demuxabr/internal/media"
	"demuxabr/internal/trace"
)

// Scenario names one network condition from the paper's experiments, used
// to compare all players head-to-head.
type Scenario struct {
	// Name identifies the scenario.
	Name string
	// Content is the asset.
	Content *media.Content
	// Profile is the link condition.
	Profile trace.Profile
}

// Scenarios returns the paper's network conditions as head-to-head arenas.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "fixed-900k (Fig 2)", Content: media.DramaShow(), Profile: trace.Fig2Bandwidth()},
		{Name: "varying-avg-600k (Fig 3)", Content: media.DramaShow(), Profile: trace.Fig3VaryingAvg600()},
		{Name: "fixed-1M (Fig 4a)", Content: media.DramaShow(), Profile: trace.Fig4aBandwidth()},
		{Name: "bimodal-avg-600k (Fig 4b)", Content: media.DramaShow(), Profile: trace.Fig4bBimodal600()},
		{Name: "fixed-700k (Fig 5)", Content: media.DramaShow(), Profile: trace.Fig5Bandwidth()},
	}
}

// buildModels constructs every player model for a content asset, each from
// the manifest a real deployment would give it: ExoPlayer-DASH and dash.js
// from the MPD; ExoPlayer-HLS, Shaka and the best-practice player from the
// H_sub master playlist (A3 listed first, as in Fig. 3).
func buildModels(c *media.Content) (models []abr.Algorithm, allowed []media.Combo, err error) {
	video, audio, err := dashLadders(c)
	if err != nil {
		return nil, nil, err
	}
	order := []*media.Track{c.AudioTracks[2], c.AudioTracks[1], c.AudioTracks[0]}
	combos, parsedOrder, err := hlsMaster(c, media.HSub(c), order)
	if err != nil {
		return nil, nil, err
	}
	models = []abr.Algorithm{
		exoplayer.NewDASH(video, audio),
		exoplayer.NewHLS(combos, parsedOrder),
		shaka.NewHLS(combos),
		dashjs.New(video, audio),
		jointabr.New(combos),
		jointabr.NewBolaJoint(combos, 0),
		jointabr.NewMPC(combos, 0),
		jointabr.NewDynamicJoint(combos),
	}
	return models, combos, nil
}

// Compare runs every player model (the three studied players plus the
// best-practice design) under one scenario.
func Compare(s Scenario) ([]Outcome, error) {
	models, allowed, err := buildModels(s.Content)
	if err != nil {
		return nil, err
	}
	outcomes := make([]Outcome, 0, len(models))
	for _, m := range models {
		out, err := Run(s.Content, s.Profile, m, allowed)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		outcomes = append(outcomes, out)
	}
	return outcomes, nil
}

// AblationVariant names one best-practice design choice switched off.
type AblationVariant struct {
	Name  string
	Model abr.Algorithm
}

// AblationVariants builds the best-practice player and its ablations for a
// content asset:
//
//   - full: all four §4 practices;
//   - no-allowed-list: adapts over all 18 combinations (practice 2 off);
//   - separate-estimators: per-type estimates summed (practice 3, shared
//     estimator clause, off);
//   - no-damping: no switch hysteresis (practice 3, stability clause, off);
//   - independent-scheduling: free-running per-type downloads (practice 4
//     off).
func AblationVariants(c *media.Content) []AblationVariant {
	hsub := media.HSub(c)
	return []AblationVariant{
		{Name: "full", Model: jointabr.New(hsub)},
		{Name: "no-allowed-list", Model: jointabr.New(media.HAll(c))},
		{Name: "separate-estimators", Model: jointabr.New(hsub, jointabr.WithSeparateEstimators())},
		{Name: "no-damping", Model: jointabr.New(hsub, jointabr.WithoutDamping())},
		{Name: "independent-scheduling", Model: jointabr.NewIndependent(hsub)},
	}
}

// Ablate runs the best-practice player and all ablations under a scenario.
func Ablate(s Scenario) (map[string]Outcome, error) {
	allowed := media.HSub(s.Content)
	out := make(map[string]Outcome)
	for _, v := range AblationVariants(s.Content) {
		o, err := Run(s.Content, s.Profile, v.Model, allowed)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.Name, err)
		}
		out[v.Name] = o
	}
	return out, nil
}
