package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/lowlat"
	"demuxabr/internal/cdnsim"
	"demuxabr/internal/core"
	"demuxabr/internal/fleet"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/runpool"
	"demuxabr/internal/trace"
)

// Live-experiment constants. Everything is a pure function of these, so the
// tables regenerate byte-identically.
const (
	// LiveLatencyTarget is the latency every live session holds — the
	// dash.js low-latency neighbourhood. It sits a little above the
	// pipeline's physical floor (part duration + delivery + RTT), so a
	// well-behaved rule can actually reach the target and a latency-aware
	// controller spends time on both sides of it.
	LiveLatencyTarget = 4 * time.Second
	// LivePartTarget is the CMAF partial-segment duration: with 5 s
	// segments, whole-segment availability alone makes a 3 s target
	// infeasible (latency cannot drop below one segment), so the live
	// experiments run the LL-HLS / LL-DASH part model.
	LivePartTarget = 1 * time.Second
	// LiveEdgeAtJoin is the stream history at join.
	LiveEdgeAtJoin = 60 * time.Second
	// LiveTraceSeeds is how many random-walk traces each cell averages
	// over (same rationale as TransportTraceSeeds).
	LiveTraceSeeds = 8
)

// LiveResyncThreshold is the overrun at which a session abandons catch-up
// and jumps back to the live edge, discarding the skipped media. Pinned
// (rather than the player's 4× target default) so the transport family's
// worst overruns visibly cross it.
const LiveResyncThreshold = 12 * time.Second

// LiveConfig is the latency-target preset every live experiment runs.
func LiveConfig() *player.LiveConfig {
	return &player.LiveConfig{
		LatencyTarget:   LiveLatencyTarget,
		PartTarget:      LivePartTarget,
		EdgeAtJoin:      LiveEdgeAtJoin,
		ResyncThreshold: LiveResyncThreshold,
	}
}

// liveWalk is trace seed s of the model comparison: a random walk between
// 700 and 3000 Kbps re-drawn every 4 s. The floor keeps the lowest ladder
// rungs always sustainable — so any stall is the model's own optimism, not
// a trace the whole trio is forced through — while the dips under the
// mid-ladder rungs build real latency pressure for the rules to diverge on.
func liveWalk(s int) trace.Profile {
	return trace.RandomWalk(int64(s+1)*31, media.Kbps(700), media.Kbps(3000), 4*time.Second, 6*time.Minute)
}

// LiveModels is the low-latency ABR trio, in print order.
func LiveModels() []core.PlayerKind {
	return []core.PlayerKind{core.LLDefault, core.LLL2A, core.LLLoLP}
}

// LiveCell is one model's row of the low-latency comparison, averaged over
// the LiveTraceSeeds traces.
type LiveCell struct {
	Model core.PlayerKind
	Seeds int

	// MeanLatency and FinalLatency are per-trace means; MaxLatency is the
	// worst latency any trace saw.
	MeanLatency  time.Duration
	FinalLatency time.Duration
	MaxLatency   time.Duration
	// Stalls and Rebuffer are totals and per-trace means of rebuffering.
	Stalls   int
	Rebuffer time.Duration
	// Resyncs and Skipped total the live-edge resync jumps and the media
	// they discarded.
	Resyncs int
	Skipped time.Duration
	// RateChanges totals catch-up controller adjustments; MeanRate is the
	// mean of per-trace mean playback rates.
	RateChanges int
	MeanRate    float64
	// VideoQuality and Score are per-trace means.
	VideoQuality float64
	Score        float64
}

// LatencyError is how far the cell's mean latency sits from the target —
// the "holds latency closest to target" quantity.
func (c LiveCell) LatencyError() time.Duration {
	d := c.MeanLatency - LiveLatencyTarget
	if d < 0 {
		d = -d
	}
	return d
}

// LiveComparison runs the low-latency trio under the latency-target player:
// the dash.js-default control (no latency feedback), L2A (hard reaction,
// lowest latency, more stalls), and LoL+ (conservative, fewest stalls,
// closest to target).
func LiveComparison() ([]LiveCell, error) {
	return LiveComparisonParallel(0)
}

// LiveComparisonParallel is LiveComparison with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial). Each cell runs its traces serially on
// private engines, so cells are byte-identical at any worker count and come
// back in LiveModels order.
func LiveComparisonParallel(parallel int) ([]LiveCell, error) {
	content := media.DramaShow()
	models := LiveModels()
	return runpool.Map(parallel, len(models), func(i int) (LiveCell, error) {
		cell := LiveCell{Model: models[i], Seeds: LiveTraceSeeds}
		for s := 0; s < LiveTraceSeeds; s++ {
			model, combos, err := core.BuildModel(models[i], content, core.ManifestOptions{})
			if err != nil {
				return LiveCell{}, fmt.Errorf("live %s: %w", models[i], err)
			}
			eng := netsim.NewEngine()
			link := netsim.NewLink(eng, liveWalk(s))
			res, err := player.Run(link, player.Config{
				Content: content,
				Model:   model,
				Live:    LiveConfig(),
			})
			if err != nil {
				return LiveCell{}, fmt.Errorf("live %s seed %d: %w", models[i], s, err)
			}
			l := res.Live
			if l == nil {
				return LiveCell{}, fmt.Errorf("live %s seed %d: session carried no live stats", models[i], s)
			}
			m := qoe.Compute(res, content, combos, qoe.DefaultWeights())
			cell.MeanLatency += l.MeanLatency
			cell.FinalLatency += l.FinalLatency
			if l.MaxLatency > cell.MaxLatency {
				cell.MaxLatency = l.MaxLatency
			}
			cell.Stalls += len(res.Stalls)
			cell.Rebuffer += res.RebufferTime()
			cell.Resyncs += l.Resyncs
			cell.Skipped += l.SkippedTime
			cell.RateChanges += l.RateChanges
			cell.MeanRate += l.MeanRate
			cell.VideoQuality += m.AvgVideoQuality
			cell.Score += m.Score
		}
		n := time.Duration(LiveTraceSeeds)
		cell.MeanLatency /= n
		cell.FinalLatency /= n
		cell.Rebuffer /= n
		cell.MeanRate /= float64(LiveTraceSeeds)
		cell.VideoQuality /= float64(LiveTraceSeeds)
		cell.Score /= float64(LiveTraceSeeds)
		return cell, nil
	})
}

// LiveTransportCell is one (scenario, protocol) cell of the live packaging
// comparison: the transport experiment's pinned demuxed-vs-muxed question
// re-asked under live constraints, where every transport wait eats directly
// into a 3 s latency budget instead of an 8 s VOD buffer.
type LiveTransportCell struct {
	Scenario string
	Protocol netsim.Protocol
	Seeds    int

	Startup  time.Duration
	Rebuffer time.Duration
	// ConnStall is the mean time requests spent waiting inside the
	// transport (handshakes, head-of-line freezes).
	ConnStall time.Duration
	// MeanLatency and FinalLatency are per-trace means of the live-edge
	// latency; Resyncs and Skipped total the overrun recoveries.
	MeanLatency  time.Duration
	FinalLatency time.Duration
	Resyncs      int
	Skipped      time.Duration
}

// DeadAir is mean startup plus mean rebuffering.
func (c LiveTransportCell) DeadAir() time.Duration { return c.Startup + c.Rebuffer }

// LiveTransport crosses the pinned packaging/scheduling scenarios with the
// three HTTP generations, live. Scenarios and pinning follow the transport
// experiment (see transportCombo): the question is what the transport costs
// each packaging mode when the session must also hold a latency target.
func LiveTransport() ([]LiveTransportCell, error) {
	return LiveTransportParallel(0)
}

// LiveTransportParallel is LiveTransport with an explicit worker count.
// Cells come back in the fixed order: scenarios outer, protocols inner.
func LiveTransportParallel(parallel int) ([]LiveTransportCell, error) {
	content := media.DramaShow()
	combo := transportCombo(content)
	scens := []struct {
		name  string
		muxed bool
		build func() abr.Algorithm
	}{
		{"muxed", true, func() abr.Algorithm { return &pinnedJoint{combo: combo} }},
		{"demux-synced", false, func() abr.Algorithm { return &pinnedJoint{combo: combo} }},
		{"demux-independent", false, func() abr.Algorithm { return &pinnedPerType{combo: combo} }},
	}
	protos := TransportProtocols()
	return runpool.Map(parallel, len(scens)*len(protos), func(i int) (LiveTransportCell, error) {
		si, pi := i/len(protos), i%len(protos)
		cell := LiveTransportCell{Scenario: scens[si].name, Protocol: protos[pi], Seeds: LiveTraceSeeds}
		for s := 0; s < LiveTraceSeeds; s++ {
			tc := transportConfig(protos[pi], s)
			eng := netsim.NewEngine()
			link := netsim.NewLink(eng, transportWalk(s))
			link.RTT = TransportRTT
			res, err := player.Run(link, player.Config{
				Content:   content,
				Model:     scens[si].build(),
				Muxed:     scens[si].muxed,
				Transport: &tc,
				Live:      LiveConfig(),
			})
			if err != nil {
				return LiveTransportCell{}, fmt.Errorf("live transport %s/%s seed %d: %w", scens[si].name, protos[pi], s, err)
			}
			l := res.Live
			if l == nil {
				return LiveTransportCell{}, fmt.Errorf("live transport %s/%s seed %d: session carried no live stats", scens[si].name, protos[pi], s)
			}
			m := qoe.Compute(res, content, nil, qoe.DefaultWeights())
			cell.Startup += m.StartupDelay
			cell.Rebuffer += m.RebufferTime
			cell.MeanLatency += l.MeanLatency
			cell.FinalLatency += l.FinalLatency
			cell.Resyncs += l.Resyncs
			cell.Skipped += l.SkippedTime
			if t := res.Transport; t != nil {
				cell.ConnStall += t.HandshakeWait + t.HoLWait
			}
		}
		n := time.Duration(LiveTraceSeeds)
		cell.Startup /= n
		cell.Rebuffer /= n
		cell.ConnStall /= n
		cell.MeanLatency /= n
		cell.FinalLatency /= n
		return cell, nil
	})
}

// LiveTransportDelta is the demuxed-over-muxed live penalty under one
// protocol: how much extra latency and dead air the free-running demuxed
// player pays over the muxed baseline when both must hold the target.
type LiveTransportDelta struct {
	// Latency is the mean live-edge latency penalty.
	Latency time.Duration
	// DeadAir is the startup + rebuffering penalty.
	DeadAir time.Duration
	// ConnStall is the extra time spent waiting inside the transport —
	// the component that separates the three HTTP generations strictly
	// (two free-running connections idle out and re-handshake on their
	// own clocks under h1, multiplex under h2, resume for 0-RTT under h3).
	ConnStall time.Duration
}

// Total is the combined user-visible penalty (latency plus dead air) — the
// quantity whose widening under h1 and narrowing under h3 the live
// experiments assert.
func (d LiveTransportDelta) Total() time.Duration { return d.Latency + d.DeadAir }

// LiveTransportDeltas reduces the live packaging comparison per protocol:
// demux-independent minus muxed. Under live constraints the demuxed
// penalty widens beyond its VOD counterpart on h1 — two connections idle
// out on their own clocks and every re-handshake lands inside the latency
// budget — and narrows under h3's multiplexed 0-RTT connection.
func LiveTransportDeltas(cells []LiveTransportCell) map[netsim.Protocol]LiveTransportDelta {
	byCell := map[string]map[netsim.Protocol]LiveTransportCell{}
	for _, c := range cells {
		if byCell[c.Scenario] == nil {
			byCell[c.Scenario] = map[netsim.Protocol]LiveTransportCell{}
		}
		byCell[c.Scenario][c.Protocol] = c
	}
	out := map[netsim.Protocol]LiveTransportDelta{}
	for _, p := range TransportProtocols() {
		d, m := byCell["demux-independent"][p], byCell["muxed"][p]
		out[p] = LiveTransportDelta{
			Latency:   d.MeanLatency - m.MeanLatency,
			DeadAir:   d.DeadAir() - m.DeadAir(),
			ConnStall: d.ConnStall - m.ConnStall,
		}
	}
	return out
}

// PrintLive renders the low-latency model comparison and the live
// demuxed-vs-muxed transport deltas.
func PrintLive(w io.Writer, cells []LiveCell, tcells []LiveTransportCell) {
	fmt.Fprintf(w, "Low-latency models (target %v, %v parts, %d walk traces 700-3000 Kbps):\n",
		LiveLatencyTarget, LivePartTarget, LiveTraceSeeds)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tmean lat\tfinal lat\tmax lat\tstalls\trebuf\tresyncs\tskipped\trate chg\tmean rate\tvquality\tQoE")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%.2fs\t%.2fs\t%.1fs\t%d\t%.1fs\t%d\t%.1fs\t%d\t%.3f\t%.2f\t%.2f\n",
			c.Model, c.MeanLatency.Seconds(), c.FinalLatency.Seconds(), c.MaxLatency.Seconds(),
			c.Stalls, c.Rebuffer.Seconds(), c.Resyncs, c.Skipped.Seconds(),
			c.RateChanges, c.MeanRate, c.VideoQuality, c.Score)
	}
	tw.Flush()
	fmt.Fprintln(w, "LoL+ holds latency closest to target with the fewest stalls; L2A buys low")
	fmt.Fprintln(w, "latency with extra down-switches and stalls; the latency-blind default")
	fmt.Fprintln(w, "drifts whenever the walk dips under its selection.")
	fmt.Fprintf(w, "Live packaging under transport (pinned V2+A1, %d walk traces 250-1000 Kbps, RTT %v):\n",
		LiveTraceSeeds, TransportRTT)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tproto\tstartup\trebuf\tdead air\tconn stall\tmean lat\tfinal lat\tresyncs\tskipped")
	for _, c := range tcells {
		fmt.Fprintf(tw, "%s\t%s\t%.2fs\t%.2fs\t%.2fs\t%.1fs\t%.2fs\t%.2fs\t%d\t%.1fs\n",
			c.Scenario, c.Protocol,
			c.Startup.Seconds(), c.Rebuffer.Seconds(), c.DeadAir().Seconds(), c.ConnStall.Seconds(),
			c.MeanLatency.Seconds(), c.FinalLatency.Seconds(), c.Resyncs, c.Skipped.Seconds())
	}
	tw.Flush()
	fmt.Fprintln(w, "Demuxed-over-muxed live penalty (independent scheduling, mean per session):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "proto\tlatency\tdead air\ttotal\tconn stall")
	deltas := LiveTransportDeltas(tcells)
	for _, p := range TransportProtocols() {
		d := deltas[p]
		fmt.Fprintf(tw, "%s\t%+.2fs\t%+.2fs\t%+.2fs\t%+.1fs\n",
			p, d.Latency.Seconds(), d.DeadAir.Seconds(), d.Total().Seconds(), d.ConnStall.Seconds())
	}
	tw.Flush()
	fmt.Fprintf(w, "The live demuxed penalty widens under h1 (every per-connection re-handshake\n")
	fmt.Fprintf(w, "lands inside the %v latency budget) and narrows under h3.\n", LiveLatencyTarget)
}

// FleetAtScaleLive is FleetAtScale with every session running the
// low-latency trio round-robin in latency-target live mode.
func FleetAtScaleLive(n, shards int) (*fleet.Result, error) {
	cfg := defaultFleetConfig(n, cdnsim.Demuxed)
	cfg.Mix = LiveModels()
	cfg.Live = LiveConfig()
	cfg.CellSessions = FleetCellSessions
	cfg.Shards = shards
	cfg.MaxRetained = -1
	return fleet.Run(cfg)
}

// Silence an unused-import error if lowlat stops being referenced directly;
// the trio is normally constructed through core.BuildModel.
var _ = lowlat.LiveWindow
