package experiments

import (
	"fmt"
	"time"

	"demuxabr/internal/abr/dashjs"
	"demuxabr/internal/abr/exoplayer"
	"demuxabr/internal/abr/shaka"
	"demuxabr/internal/media"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// Fig2Result captures an ExoPlayer-DASH experiment of Fig. 2: the selected
// combination and the better combination the predetermination excluded.
type Fig2Result struct {
	Outcome Outcome
	// Predetermined is ExoPlayer's combination subset for the ladder.
	Predetermined []media.Combo
	// Dominant is the combination selected for most of the session.
	Dominant media.Combo
	// BetterExcluded is the combination the paper argues is preferable
	// (V3+B3 for Fig 2(a), V3+C1 for Fig 2(b)).
	BetterExcluded media.Combo
	// BetterFits reports that BetterExcluded's declared bandwidth is within
	// the link capacity — i.e. it was feasible but unreachable.
	BetterFits bool
	// BetterPredetermined reports whether BetterExcluded is reachable at
	// all (it must be false: that is the finding).
	BetterPredetermined bool
}

func fig2(content *media.Content, betterVideo, betterAudio string) (Fig2Result, error) {
	video, audio, err := dashLadders(content)
	if err != nil {
		return Fig2Result{}, err
	}
	model := exoplayer.NewDASH(video, audio)
	out, err := Run(content, trace.Fig2Bandwidth(), model, nil)
	if err != nil {
		return Fig2Result{}, err
	}
	// Resolve the "better" combination against the parsed ladders.
	better := media.Combo{Video: video.ByID(betterVideo), Audio: audio.ByID(betterAudio)}
	if better.Video == nil || better.Audio == nil {
		return Fig2Result{}, fmt.Errorf("experiments: better combo %s+%s not in ladders", betterVideo, betterAudio)
	}
	r := Fig2Result{
		Outcome:        out,
		Predetermined:  model.Combos(),
		Dominant:       DominantCombo(out.Result),
		BetterExcluded: better,
		BetterFits:     better.DeclaredBitrate() <= trace.Fig2Bandwidth().RateAt(0),
	}
	for _, cb := range r.Predetermined {
		if cb.String() == better.String() {
			r.BetterPredetermined = true
		}
	}
	return r, nil
}

// Fig2a runs the first Fig. 2 experiment: Table 1 video with the low-rate B
// audio ladder at a fixed 900 Kbps. ExoPlayer settles on V3+B2 although
// V3+B3 (higher audio quality, 601 Kbps declared) fits the link.
func Fig2a() (Fig2Result, error) {
	return fig2(media.DramaShowLowAudio(), "V3", "B3")
}

// Fig2b runs the second Fig. 2 experiment: the high-rate C audio ladder.
// ExoPlayer settles on V2+C2 (very low video + high audio) although V3+C1
// (669 Kbps declared) fits.
func Fig2b() (Fig2Result, error) {
	return fig2(media.DramaShowHighAudio(), "V3", "C1")
}

// Fig3Result captures the ExoPlayer-HLS experiment of Fig. 3: fixed audio,
// off-manifest selections, stalls.
type Fig3Result struct {
	Outcome Outcome
	// FixedAudio is the rendition ExoPlayer pinned (the first listed).
	FixedAudio string
	// AudioTrackChanges counts audio switches (must be 0: no adaptation).
	AudioTrackChanges int
	// OffManifestChunks counts chunk positions streamed as combinations
	// outside H_sub.
	OffManifestChunks int
	// Timeline carries the Fig. 3 series (tracks, buffers, stall shading).
	Timeline []TimelinePoint
}

// Fig3 runs the first ExoPlayer HLS experiment: manifest H_sub with A3
// listed first, over the time-varying average-600 Kbps link. The audio
// stays pinned at A3, stalls accumulate, and selected pairs leave the
// manifest's subset.
func Fig3() (Fig3Result, error) {
	return Fig3Traced(nil)
}

// Fig3Traced is Fig3 with a flight recorder attached — the timeline the
// docs' stall-diagnosis walkthrough is drawn from.
func Fig3Traced(rec *timeline.Recorder) (Fig3Result, error) {
	content := media.DramaShow()
	order := []*media.Track{content.AudioTracks[2], content.AudioTracks[1], content.AudioTracks[0]}
	combos, parsedOrder, err := hlsMaster(content, media.HSub(content), order)
	if err != nil {
		return Fig3Result{}, err
	}
	model := exoplayer.NewHLS(combos, parsedOrder)
	out, err := RunRecorded(content, trace.Fig3VaryingAvg600(), model, combos, rec)
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{
		Outcome:           out,
		FixedAudio:        model.FixedAudio().ID,
		AudioTrackChanges: out.Metrics.AudioSwitches,
		OffManifestChunks: out.Metrics.OffManifest,
		Timeline:          Timeline(out.Result),
	}, nil
}

// ExoHLSLowFirst runs the second ExoPlayer HLS experiment (§3.2, figures
// omitted in the paper): A1 listed first and a 5 Mbps link — the player
// streams the lowest-quality audio for the whole session despite the
// ample bandwidth.
func ExoHLSLowFirst() (Fig3Result, error) {
	content := media.DramaShow()
	combos, parsedOrder, err := hlsMaster(content, media.HSub(content), nil) // ladder order: A1 first
	if err != nil {
		return Fig3Result{}, err
	}
	model := exoplayer.NewHLS(combos, parsedOrder)
	out, err := Run(content, trace.ExoHLSFixedBandwidth(), model, combos)
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{
		Outcome:           out,
		FixedAudio:        model.FixedAudio().ID,
		AudioTrackChanges: out.Metrics.AudioSwitches,
		OffManifestChunks: out.Metrics.OffManifest,
		Timeline:          Timeline(out.Result),
	}, nil
}

// Fig4Result captures a Shaka experiment of Fig. 4.
type Fig4Result struct {
	Outcome Outcome
	// EstimateStart/EstimateEnd sample the bandwidth-estimate series.
	EstimateStart media.Bps
	EstimateEnd   media.Bps
	// AnyValidSample reports whether any interval passed the 16 KB filter.
	AnyValidSample bool
	// Dominant is the most-streamed combination.
	Dominant media.Combo
	// Timeline carries the Fig. 4 series.
	Timeline []TimelinePoint
}

// Fig4a runs the first Shaka experiment: H_all over a constant 1 Mbps link.
// No throughput interval ever reaches 16 KB, so the 500 Kbps default sticks
// and V2+A2 streams throughout.
func Fig4a() (Fig4Result, error) {
	return runFig4(trace.Fig4aBandwidth())
}

// Fig4b runs the second Shaka experiment: the bimodal average-600 Kbps
// profile. Only high-phase intervals pass the filter, so the estimate
// swings from the 500 Kbps default (underestimation) to ~1.5 Mbps
// (overestimation), driving selections the link cannot sustain and heavy
// rebuffering.
func Fig4b() (Fig4Result, error) {
	return runFig4(trace.Fig4bBimodal600())
}

func runFig4(profile trace.Profile) (Fig4Result, error) {
	content := media.DramaShow()
	combos, _, err := hlsMaster(content, media.HAll(content), nil)
	if err != nil {
		return Fig4Result{}, err
	}
	model := shaka.NewHLS(combos)
	out, err := Run(content, profile, model, combos)
	if err != nil {
		return Fig4Result{}, err
	}
	r := Fig4Result{
		Outcome:        out,
		AnyValidSample: model.HasValidSample(),
		Dominant:       DominantCombo(out.Result),
		Timeline:       Timeline(out.Result),
	}
	if n := len(out.Result.Timeline); n > 0 {
		r.EstimateStart = out.Result.Timeline[0].Estimate
		r.EstimateEnd = out.Result.Timeline[n-1].Estimate
	}
	return r, nil
}

// Fig5Result captures the dash.js experiment of Fig. 5.
type Fig5Result struct {
	Outcome Outcome
	// Combos are the distinct audio/video pairings streamed.
	Combos []media.Combo
	// UndesirablePairings flags combinations pairing the lowest-rung videos
	// (V1/V2) with the highest audio (the §3.4 "clearly undesirable" case).
	UndesirablePairings []media.Combo
	// MaxImbalance is the Fig. 5(b) buffer divergence.
	MaxImbalance time.Duration
	// Timeline carries the Fig. 5 series.
	Timeline []TimelinePoint
}

// Fig5 runs the dash.js experiment: DASH manifest, fixed 700 Kbps link,
// fully independent per-type DYNAMIC adaptation. Selections fluctuate
// across pairings including the undesirable V2+A3, and the audio and video
// buffers diverge.
func Fig5() (Fig5Result, error) {
	content := media.DramaShow()
	video, audio, err := dashLadders(content)
	if err != nil {
		return Fig5Result{}, err
	}
	model := dashjs.New(video, audio)
	out, err := Run(content, trace.Fig5Bandwidth(), model, nil)
	if err != nil {
		return Fig5Result{}, err
	}
	r := Fig5Result{
		Outcome:      out,
		Combos:       out.Result.CombosSelected(),
		MaxImbalance: out.Result.MaxBufferImbalance(),
		Timeline:     Timeline(out.Result),
	}
	topAudio := audio[len(audio)-1]
	for _, cb := range r.Combos {
		if cb.Audio.ID == topAudio.ID && video.Index(cb.Video) <= 1 {
			r.UndesirablePairings = append(r.UndesirablePairings, cb)
		}
	}
	return r, nil
}
