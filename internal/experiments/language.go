package experiments

import (
	"fmt"
	"time"

	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/trace"
)

// LanguageSwitchResult quantifies the cost of a mid-session audio-language
// change under the two packagings — the §1 motivation made concrete: with
// demuxed tracks only the audio buffer is discarded and refetched; muxed
// packaging throws the video away with it.
type LanguageSwitchResult struct {
	Demuxed Outcome
	Muxed   Outcome
	// DemuxedDiscarded / MuxedDiscarded are the bytes thrown away by the
	// switch in each packaging.
	DemuxedDiscarded int64
	MuxedDiscarded   int64
}

// LanguageSwitch streams the two-language content on a steady 2 Mbps link
// and switches the audio language from English to Spanish at t=120 s.
func LanguageSwitch() (LanguageSwitchResult, error) {
	content := media.MultiLanguageShow()
	const switchAt = 120 * time.Second

	run := func(muxed bool) (Outcome, int64, error) {
		en := media.CombosForLanguage(media.AllCombos(content.VideoTracks, media.LanguageLadder(content.AudioTracks, "en")), "en")
		es := media.CombosForLanguage(media.AllCombos(content.VideoTracks, media.LanguageLadder(content.AudioTracks, "es")), "es")
		model := jointabr.New(media.PairCombos(content.VideoTracks, media.LanguageLadder(content.AudioTracks, "en")))
		_ = en
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fixed(media.Kbps(2000)))
		// The viewer picks Spanish at switchAt: the model's allowed list
		// changes and the player resets the audio stream. Scheduling the
		// model update before player.Run makes it fire ahead of the
		// session's own reset event at the same instant.
		eng.Schedule(switchAt, func() {
			model.SetAllowed(media.PairCombos(content.VideoTracks, onlyAudioOf(es)))
		})
		cfg := player.Config{
			Content:     content,
			Model:       model,
			AudioResets: []time.Duration{switchAt},
			Muxed:       muxed,
		}
		if !muxed {
			cfg.SyncWindow = 1
		}
		res, err := player.Run(link, cfg)
		if err != nil {
			return Outcome{}, 0, err
		}
		if !res.Ended {
			return Outcome{}, 0, fmt.Errorf("experiments: language switch (muxed=%v) did not finish", muxed)
		}
		var discarded int64
		for _, r := range res.AudioResets {
			discarded += r.DiscardedBytes
		}
		return Outcome{
			Model:   model.Name(),
			Result:  res,
			Metrics: qoe.Compute(res, content, nil, qoe.DefaultWeights()),
		}, discarded, nil
	}

	var out LanguageSwitchResult
	var err error
	if out.Demuxed, out.DemuxedDiscarded, err = run(false); err != nil {
		return out, err
	}
	if out.Muxed, out.MuxedDiscarded, err = run(true); err != nil {
		return out, err
	}
	return out, nil
}

// onlyAudioOf extracts the audio ladder from a combination list, preserving
// order and uniqueness.
func onlyAudioOf(combos []media.Combo) media.Ladder {
	var out media.Ladder
	seen := map[string]bool{}
	for _, cb := range combos {
		if !seen[cb.Audio.ID] {
			seen[cb.Audio.ID] = true
			out = append(out, cb.Audio)
		}
	}
	return out
}
