package experiments

import (
	"bytes"
	"fmt"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/exoplayer"
	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/trace"
)

// This file holds the experiments that validate the paper's §4 best
// practices beyond the head-to-head comparison: the media-playlist repair
// of the ExoPlayer HLS degradation, and the different-servers (split-path)
// scenario that motivates per-track bandwidth declarations.

// RepairResult contrasts the broken ExoPlayer HLS behaviour of Fig. 3 with
// the §4.1 client-side fix (download second-level media playlists, recover
// per-track bitrates, adapt over the listed variants).
type RepairResult struct {
	Broken   Outcome
	Repaired Outcome
	// RecoveredBitrateErr is the largest relative error between the
	// bitrates recovered from the media playlists and the true track
	// averages — it must be small for the repair to be meaningful.
	RecoveredBitrateErr float64
}

// RecoveredLadders rebuilds track ladders the way a §4.1-compliant HLS
// client does: generate (here) and parse each track's media playlist and
// derive per-track peak/average bitrates from the byte ranges.
func RecoveredLadders(c *media.Content) (video, audio media.Ladder, maxRelErr float64, err error) {
	recover := func(tr *media.Track) (*media.Track, float64, error) {
		var buf bytes.Buffer
		if err := hls.GenerateMedia(c, tr, hls.SingleFile, false).Encode(&buf); err != nil {
			return nil, 0, err
		}
		pl, err := hls.ParseMedia(&buf)
		if err != nil {
			return nil, 0, err
		}
		peak, avg, err := hls.TrackBitrate(pl)
		if err != nil {
			return nil, 0, err
		}
		relErr := float64(avg-tr.AvgBitrate) / float64(tr.AvgBitrate)
		if relErr < 0 {
			relErr = -relErr
		}
		return &media.Track{
			ID:              tr.ID,
			Type:            tr.Type,
			AvgBitrate:      avg,
			PeakBitrate:     peak,
			DeclaredBitrate: peak,
			Resolution:      tr.Resolution,
			Channels:        tr.Channels,
			SampleRateHz:    tr.SampleRateHz,
		}, relErr, nil
	}
	for _, tr := range c.VideoTracks {
		rec, e, err := recover(tr)
		if err != nil {
			return nil, nil, 0, err
		}
		if e > maxRelErr {
			maxRelErr = e
		}
		video = append(video, rec)
	}
	for _, tr := range c.AudioTracks {
		rec, e, err := recover(tr)
		if err != nil {
			return nil, nil, 0, err
		}
		if e > maxRelErr {
			maxRelErr = e
		}
		audio = append(audio, rec)
	}
	return video, audio, maxRelErr, nil
}

// Fig3Repaired reruns the Fig. 3 conditions with the §4.1 repair applied:
// the client reads the second-level media playlists before adapting. Audio
// adaptation returns, selections stay on the manifest, and rebuffering
// drops versus the broken player.
func Fig3Repaired() (RepairResult, error) {
	content := media.DramaShow()
	order := []*media.Track{content.AudioTracks[2], content.AudioTracks[1], content.AudioTracks[0]}
	combos, parsedOrder, err := hlsMaster(content, media.HSub(content), order)
	if err != nil {
		return RepairResult{}, err
	}
	broken, err := Run(content, trace.Fig3VaryingAvg600(), exoplayer.NewHLS(combos, parsedOrder), combos)
	if err != nil {
		return RepairResult{}, err
	}
	video, audio, relErr, err := RecoveredLadders(content)
	if err != nil {
		return RepairResult{}, err
	}
	// Re-key the master's variants onto the recovered tracks.
	variants := make([]media.Combo, len(combos))
	for i, cb := range combos {
		variants[i] = media.Combo{Video: video.ByID(cb.Video.ID), Audio: audio.ByID(cb.Audio.ID)}
		if variants[i].Video == nil || variants[i].Audio == nil {
			return RepairResult{}, fmt.Errorf("experiments: variant %s not recoverable", cb)
		}
	}
	repaired, err := Run(content, trace.Fig3VaryingAvg600(), exoplayer.NewHLSRepaired(variants), combos)
	if err != nil {
		return RepairResult{}, err
	}
	return RepairResult{Broken: broken, Repaired: repaired, RecoveredBitrateErr: relErr}, nil
}

// SplitPathResult contrasts aggregate-budget selection with path-aware
// selection when audio and video are served over different bottlenecks.
type SplitPathResult struct {
	// VideoPathKbps / AudioPathKbps are the two links' rates.
	VideoPathKbps float64
	AudioPathKbps float64
	Shared        Outcome // single aggregate bandwidth budget
	PathAware     Outcome // per-component path budgets
}

// SplitPath runs the §4.1 different-servers scenario: a fast video path
// (4 Mbps) and a slow audio path (250 Kbps — enough for A2, not A3).
//
// A player that reasons about one aggregate bandwidth is wrong in both
// directions here: its active-period meter is dominated by the slow audio
// transfers, so the estimate collapses toward the audio path's rate and
// the 4 Mbps video path is starved at the lowest rungs. The path-aware
// player budgets each component against its own path's estimate and
// reaches the quality both paths can actually sustain. This is why §4.1
// calls per-track bandwidth declarations "particularly important when
// audio and video are fetched over different network paths".
func SplitPath() (SplitPathResult, error) {
	content := media.DramaShow()
	combos, _, err := hlsMaster(content, media.HSub(content), nil)
	if err != nil {
		return SplitPathResult{}, err
	}
	r := SplitPathResult{VideoPathKbps: 4000, AudioPathKbps: 250}
	run := func(model abr.Algorithm) (Outcome, error) {
		eng := netsim.NewEngine()
		videoLink := netsim.NewLink(eng, trace.Fixed(media.Kbps(r.VideoPathKbps)))
		audioLink := netsim.NewLink(eng, trace.Fixed(media.Kbps(r.AudioPathKbps)))
		res, err := player.RunSplit(videoLink, audioLink, player.Config{Content: content, Model: model})
		if err != nil {
			return Outcome{}, err
		}
		if !res.Ended {
			return Outcome{}, fmt.Errorf("experiments: %s did not finish on split paths", model.Name())
		}
		return Outcome{
			Model:   model.Name(),
			Result:  res,
			Metrics: qoe.Compute(res, content, combos, qoe.DefaultWeights()),
		}, nil
	}
	if r.Shared, err = run(jointabr.New(combos)); err != nil {
		return SplitPathResult{}, err
	}
	if r.PathAware, err = run(jointabr.New(combos, jointabr.WithPathAwareness())); err != nil {
		return SplitPathResult{}, err
	}
	return r, nil
}

// SyncGranularityPoint is one cell of the §4.2 synchronization-granularity
// sweep: the best-practice player with a given audio/video skew bound.
type SyncGranularityPoint struct {
	// Window is the allowed lead in chunk positions (0 = strict pairing).
	Window  int
	Outcome Outcome
}

// SyncGranularity quantifies §4.2's "synchronize ... at the chunk level or
// in terms of a small number of chunks": the best-practice player runs on
// the Fig. 3 link with increasing skew bounds. Imbalance grows with the
// window while QoE stays flat for small windows — fine-granularity sync is
// cheap.
func SyncGranularity(windows []int) ([]SyncGranularityPoint, error) {
	content := media.DramaShow()
	combos, _, err := hlsMaster(content, media.HSub(content), nil)
	if err != nil {
		return nil, err
	}
	var out []SyncGranularityPoint
	for _, w := range windows {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fig3VaryingAvg600())
		model := jointabr.New(combos)
		res, err := player.Run(link, player.Config{Content: content, Model: model, SyncWindow: w})
		if err != nil {
			return nil, err
		}
		if !res.Ended {
			return nil, fmt.Errorf("experiments: sync window %d did not finish", w)
		}
		out = append(out, SyncGranularityPoint{
			Window: w,
			Outcome: Outcome{
				Model:   model.Name(),
				Result:  res,
				Metrics: qoe.Compute(res, content, combos, qoe.DefaultWeights()),
			},
		})
	}
	return out, nil
}
