package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"demuxabr/internal/media"
	"demuxabr/internal/trace"
)

// SweepPoint is one cell of a bandwidth sweep: a player model's outcome at
// a fixed link rate.
type SweepPoint struct {
	Kbps    float64
	Outcome Outcome
}

// DefaultSweepKbps spans the drama show's operating range: below the
// cheapest combination (V1+A1, 239 Kbps average) up to beyond the most
// expensive (V6+A3, 3112 Kbps average).
func DefaultSweepKbps() []float64 {
	return []float64{400, 600, 900, 1300, 2000, 3000, 4500}
}

// BandwidthSweep runs every player model at each fixed bandwidth — the
// crossover analysis: who wins where across the operating range.
func BandwidthSweep(kbps []float64) ([]SweepPoint, error) {
	content := media.DramaShow()
	var points []SweepPoint
	for _, k := range kbps {
		models, allowed, err := buildModels(content)
		if err != nil {
			return nil, err
		}
		for _, m := range models {
			out, err := Run(content, trace.Fixed(media.Kbps(k)), m, allowed)
			if err != nil {
				return nil, fmt.Errorf("sweep %v Kbps: %w", k, err)
			}
			points = append(points, SweepPoint{Kbps: k, Outcome: out})
		}
	}
	return points, nil
}

// PrintSweep renders the sweep as a QoE matrix (rows: models, columns:
// bandwidths) followed by a rebuffering matrix.
func PrintSweep(w io.Writer, points []SweepPoint) {
	var kbps []float64
	var models []string
	seenK := map[float64]bool{}
	seenM := map[string]bool{}
	cells := map[string]map[float64]Outcome{}
	for _, p := range points {
		if !seenK[p.Kbps] {
			seenK[p.Kbps] = true
			kbps = append(kbps, p.Kbps)
		}
		if !seenM[p.Outcome.Model] {
			seenM[p.Outcome.Model] = true
			models = append(models, p.Outcome.Model)
			cells[p.Outcome.Model] = map[float64]Outcome{}
		}
		cells[p.Outcome.Model][p.Kbps] = p.Outcome
	}
	write := func(title string, value func(Outcome) string) {
		fmt.Fprintln(w, title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "Model")
		for _, k := range kbps {
			fmt.Fprintf(tw, "\t%.0fK", k)
		}
		fmt.Fprintln(tw)
		for _, m := range models {
			fmt.Fprint(tw, m)
			for _, k := range kbps {
				fmt.Fprintf(tw, "\t%s", value(cells[m][k]))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	write("QoE score by link bandwidth:", func(o Outcome) string {
		return fmt.Sprintf("%.2f", o.Metrics.Score)
	})
	fmt.Fprintln(w)
	write("Rebuffering seconds by link bandwidth:", func(o Outcome) string {
		return fmt.Sprintf("%.1f", o.Metrics.RebufferTime.Seconds())
	})
}
