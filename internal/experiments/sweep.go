package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"demuxabr/internal/media"
	"demuxabr/internal/runpool"
	"demuxabr/internal/trace"
)

// SweepPoint is one cell of a bandwidth sweep: a player model's outcome at
// a fixed link rate.
type SweepPoint struct {
	Kbps float64
	// KbpsIndex is the position of Kbps in the sweep's ordered bandwidth
	// list. PrintSweep joins cells on this index rather than on the raw
	// float, so near-equal bandwidths can't silently merge or split
	// columns.
	KbpsIndex int
	Outcome   Outcome
}

// DefaultSweepKbps spans the drama show's operating range: below the
// cheapest combination (V1+A1, 239 Kbps average) up to beyond the most
// expensive (V6+A3, 3112 Kbps average).
func DefaultSweepKbps() []float64 {
	return []float64{400, 600, 900, 1300, 2000, 3000, 4500}
}

// BandwidthSweep runs every player model at each fixed bandwidth — the
// crossover analysis: who wins where across the operating range.
func BandwidthSweep(kbps []float64) ([]SweepPoint, error) {
	return BandwidthSweepParallel(kbps, 0)
}

// BandwidthSweepParallel is BandwidthSweep with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial). The manifests are parsed once for the
// whole sweep; each (bandwidth, model) job builds only its own model and
// engine, and the points come back in the serial order: bandwidths outer,
// models inner.
func BandwidthSweepParallel(kbps []float64, parallel int) ([]SweepPoint, error) {
	content := media.DramaShow()
	specs, allowed, err := modelSpecs(content)
	if err != nil {
		return nil, err
	}
	return runpool.Map(parallel, len(kbps)*len(specs), func(i int) (SweepPoint, error) {
		ki, mi := i/len(specs), i%len(specs)
		k := kbps[ki]
		out, err := Run(content, trace.Fixed(media.Kbps(k)), specs[mi].build(), allowed)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("sweep %v Kbps: %w", k, err)
		}
		return SweepPoint{Kbps: k, KbpsIndex: ki, Outcome: out}, nil
	})
}

// PrintSweep renders the sweep as a QoE matrix (rows: models, columns:
// bandwidths) followed by a rebuffering matrix. Columns join on
// SweepPoint.KbpsIndex; the Kbps value only labels the header.
func PrintSweep(w io.Writer, points []SweepPoint) {
	ncols := 0
	for _, p := range points {
		if p.KbpsIndex+1 > ncols {
			ncols = p.KbpsIndex + 1
		}
	}
	kbps := make([]float64, ncols)
	var models []string
	seenM := map[string]bool{}
	cells := map[string][]Outcome{}
	for _, p := range points {
		kbps[p.KbpsIndex] = p.Kbps
		if !seenM[p.Outcome.Model] {
			seenM[p.Outcome.Model] = true
			models = append(models, p.Outcome.Model)
			cells[p.Outcome.Model] = make([]Outcome, ncols)
		}
		cells[p.Outcome.Model][p.KbpsIndex] = p.Outcome
	}
	write := func(title string, value func(Outcome) string) {
		fmt.Fprintln(w, title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "Model")
		for _, k := range kbps {
			fmt.Fprintf(tw, "\t%.0fK", k)
		}
		fmt.Fprintln(tw)
		for _, m := range models {
			fmt.Fprint(tw, m)
			for i := range kbps {
				fmt.Fprintf(tw, "\t%s", value(cells[m][i]))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	write("QoE score by link bandwidth:", func(o Outcome) string {
		return fmt.Sprintf("%.2f", o.Metrics.Score)
	})
	fmt.Fprintln(w)
	write("Rebuffering seconds by link bandwidth:", func(o Outcome) string {
		return fmt.Sprintf("%.1f", o.Metrics.RebufferTime.Seconds())
	})
}
