package experiments

import (
	"fmt"
	"time"

	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/trace"
)

// CurationResult contrasts a generic proportional pairing with a
// content-appropriate curated combination list (§2.1: "for music shows,
// the sound quality may be relatively more important than video quality
// ... for an action movie, the desirable combinations may be the
// opposite"). Both players run the same algorithm on the same link; only
// the server-declared list differs. QoE is scored with content-appropriate
// weights (audio weighs double for the music show, half for the action
// movie).
type CurationResult struct {
	Content string
	Generic Outcome
	Curated Outcome
}

// musicCuration pairs every rung with the best audio the ladder offers
// early: sound first.
func musicCuration(c *media.Content) []media.Combo {
	v, a := c.VideoTracks, c.AudioTracks
	top := a[len(a)-1]
	out := []media.Combo{
		{Video: v[0], Audio: a[1]},
		{Video: v[0], Audio: top},
	}
	for _, video := range v[1:] {
		out = append(out, media.Combo{Video: video, Audio: top})
	}
	return out
}

// actionCuration spends on pixels first: audio stays low until video is
// near the top.
func actionCuration(c *media.Content) []media.Combo {
	v, a := c.VideoTracks, c.AudioTracks
	out := make([]media.Combo, 0, len(v)+1)
	for i, video := range v {
		audio := a[0]
		if i >= len(v)-2 {
			audio = a[1]
		}
		if i == len(v)-1 {
			audio = a[len(a)-1]
		}
		out = append(out, media.Combo{Video: video, Audio: audio})
	}
	return out
}

// ContentCuration runs both content types at 1.3 Mbps with and without
// content-appropriate curation.
func ContentCuration() ([]CurationResult, error) {
	link := trace.Fixed(media.Kbps(1300))
	cases := []struct {
		content *media.Content
		curated func(*media.Content) []media.Combo
		weights qoe.Weights
	}{
		{media.MusicShow(), musicCuration, weightedAudio(2)},
		{media.ActionMovie(), actionCuration, weightedAudio(0.5)},
	}
	var out []CurationResult
	for _, tc := range cases {
		generic, err := runCuration(tc.content, link, media.HSub(tc.content), tc.weights)
		if err != nil {
			return nil, err
		}
		curated, err := runCuration(tc.content, link, tc.curated(tc.content), tc.weights)
		if err != nil {
			return nil, err
		}
		out = append(out, CurationResult{Content: tc.content.Name, Generic: generic, Curated: curated})
	}
	return out, nil
}

func weightedAudio(w float64) qoe.Weights {
	weights := qoe.DefaultWeights()
	weights.AudioWeight = w
	return weights
}

func runCuration(c *media.Content, profile trace.Profile, rawCombos []media.Combo, weights qoe.Weights) (Outcome, error) {
	combos, _, err := hlsMaster(c, rawCombos, nil)
	if err != nil {
		return Outcome{}, err
	}
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, profile)
	model := jointabr.New(combos)
	res, err := player.Run(link, player.Config{Content: c, Model: model})
	if err != nil {
		return Outcome{}, err
	}
	if !res.Ended {
		return Outcome{}, fmt.Errorf("experiments: curation run on %s did not finish", c.Name)
	}
	return Outcome{
		Model:   model.Name(),
		Result:  res,
		Metrics: qoe.Compute(res, c, combos, weights),
	}, nil
}

// ChunkDurationPoint is one cell of the chunking sweep.
type ChunkDurationPoint struct {
	ChunkSeconds float64
	Outcome      Outcome
}

// ChunkDurationSweep re-chunks the Table 1 content at several segment
// durations and streams it with the best-practice player over a 900 Kbps
// link with a 100 ms request RTT. Short chunks pay the per-request RTT tax
// (two requests per position) and long chunks raise the startup delay and
// coarsen adaptation — the trade-off behind the industry's 2-10 s
// segmentations and the paper's chunk-level synchronization advice.
func ChunkDurationSweep(chunkSecs []float64) ([]ChunkDurationPoint, error) {
	var out []ChunkDurationPoint
	for _, cs := range chunkSecs {
		content, err := media.NewContent(media.ContentSpec{
			Name:          fmt.Sprintf("drama-%gs", cs),
			Duration:      media.DramaDuration,
			ChunkDuration: time.Duration(cs * float64(time.Second)),
			VideoTracks:   media.DramaVideoLadder(),
			AudioTracks:   media.DramaAudioLadder(),
			Model:         media.DefaultChunkModel(),
		})
		if err != nil {
			return nil, err
		}
		combos, _, err := hlsMaster(content, media.HSub(content), nil)
		if err != nil {
			return nil, err
		}
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fixed(media.Kbps(900)))
		link.RTT = 100 * time.Millisecond
		model := jointabr.New(combos)
		res, err := player.Run(link, player.Config{Content: content, Model: model})
		if err != nil {
			return nil, err
		}
		if !res.Ended {
			return nil, fmt.Errorf("experiments: %g s chunks did not finish", cs)
		}
		out = append(out, ChunkDurationPoint{
			ChunkSeconds: cs,
			Outcome: Outcome{
				Model:   model.Name(),
				Result:  res,
				Metrics: qoe.Compute(res, content, combos, qoe.DefaultWeights()),
			},
		})
	}
	return out, nil
}
