package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/dashjs"
	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/runpool"
	"demuxabr/internal/shaping"
	"demuxabr/internal/trace"
)

// The Ladder experiment is the offline-chunking × online-ABR cross-product:
// one title is prepared three ways from the SAME scene-complexity signal —
// uniform chunks with the authored ladder, per-type shaped chunks with the
// authored ladder, and shaped chunks with the searched per-title ladder —
// then each preparation is streamed by the per-type players that can play
// misaligned A/V timelines. The link prices every request with an RTT, so
// the chunking decision (how many requests, where the scene spikes land)
// shows up in the session metrics, not just in the offline objective.

const (
	// LadderSeed drives the shaping pipeline (scene model, bandwidth
	// samples); one fixed seed keeps the whole family deterministic.
	LadderSeed = 21

	// LadderRTT prices each chunk request. Demuxed streaming doubles the
	// request count, which is exactly the tax content-aware chunking
	// amortizes with longer audio chunks and scene-snapped video chunks.
	LadderRTT = 100 * time.Millisecond

	// LadderKbps is the constrained link of the family: tight enough that
	// both the RTT tax and scene spikes move the QoE, with the DramaShow
	// ladder spanning the operating point.
	LadderKbps = 900
)

// ladderBaseSpec is the un-prepared title: the paper's drama asset as an
// encoding spec, before any chunking decision.
func ladderBaseSpec() media.ContentSpec {
	return media.ContentSpec{
		Name:          "drama-show",
		Duration:      media.DramaDuration,
		ChunkDuration: media.DramaChunkDuration,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.DramaAudioLadder(),
		Model:         media.DefaultChunkModel(),
	}
}

// LadderVariant is one offline preparation of the title, with its player
// constructors built from the manifests that preparation produces.
type LadderVariant struct {
	// Name identifies the preparation: fixed-uniform, shaped-chunks,
	// shaped-ladder.
	Name string
	// Content is the synthesized asset.
	Content *media.Content
	// Allowed is the curated combination list parsed back from the
	// variant's master playlist.
	Allowed []media.Combo

	specs []modelSpec
}

// LadderCell is one cross-product entry: a preparation streamed by one
// player model.
type LadderCell struct {
	Variant string
	// Aligned records whether the preparation's A/V timelines share
	// boundaries (the shaped preparations misalign them on purpose).
	Aligned                  bool
	VideoChunks, AudioChunks int
	Outcome                  Outcome
}

// LadderVariants prepares the title three ways from one shaping run. All
// three synthesize chunk sizes from the same scene signal, so the variants
// differ only in the decision under study:
//
//   - fixed-uniform: nominal 5 s chunks, authored ladder — the baseline
//     every earlier experiment streams;
//   - shaped-chunks: the plan's per-type boundary tables, authored ladder —
//     isolates the chunking decision (directly comparable QoE);
//   - shaped-ladder: boundary tables plus the searched per-title ladder —
//     the full Segue-style preparation (its ladder differs, so compare its
//     bitrate/stall profile, not the utility-based score).
func LadderVariants() ([]LadderVariant, *shaping.Plan, error) {
	base := ladderBaseSpec()
	plan, err := shaping.Optimize(base, shaping.Config{Seed: LadderSeed, Workers: 1})
	if err != nil {
		return nil, nil, err
	}

	fixedSpec := plan.FixedSpec(base)

	chunksSpec := plan.FixedSpec(base)
	chunksSpec.Name = base.Name + "-shaped-chunks"
	chunksSpec.VideoChunks = plan.VideoChunks
	chunksSpec.AudioChunks = plan.AudioChunks

	fullSpec := plan.Spec(base)
	fullSpec.Name = base.Name + "-shaped-ladder"

	var variants []LadderVariant
	for _, v := range []struct {
		name string
		spec media.ContentSpec
	}{
		{"fixed-uniform", fixedSpec},
		{"shaped-chunks", chunksSpec},
		{"shaped-ladder", fullSpec},
	} {
		variant, err := newLadderVariant(v.name, v.spec)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: ladder variant %s: %w", v.name, err)
		}
		variants = append(variants, variant)
	}
	return variants, plan, nil
}

// newLadderVariant synthesizes the content and round-trips its manifests
// into the per-type player constructors: dash.js from the MPD (whose
// SegmentTimeline declares the variable chunking), the best-practice
// independent scheduler from the H_sub master playlist. Joint and muxed
// models are deliberately absent — they require aligned timelines, which
// the shaped preparations give up on purpose.
func newLadderVariant(name string, spec media.ContentSpec) (LadderVariant, error) {
	c, err := media.NewContent(spec)
	if err != nil {
		return LadderVariant{}, err
	}
	video, audio, err := dashLadders(c)
	if err != nil {
		return LadderVariant{}, err
	}
	combos, _, err := hlsMaster(c, media.HSub(c), nil)
	if err != nil {
		return LadderVariant{}, err
	}
	return LadderVariant{
		Name:    name,
		Content: c,
		Allowed: combos,
		specs: []modelSpec{
			{"dashjs", func() abr.Algorithm { return dashjs.New(video, audio) }},
			{"bestpractice-independent", func() abr.Algorithm { return jointabr.NewIndependent(combos) }},
		},
	}, nil
}

// LadderCross runs the full cross-product. Cells keep variant-major order;
// output is identical at any worker count.
func LadderCross(parallel int) ([]LadderCell, *shaping.Plan, error) {
	variants, plan, err := LadderVariants()
	if err != nil {
		return nil, nil, err
	}
	type job struct{ v, m int }
	var jobs []job
	for i, v := range variants {
		for j := range v.specs {
			jobs = append(jobs, job{i, j})
		}
	}
	cells, err := runpool.Map(parallel, len(jobs), func(k int) (LadderCell, error) {
		v := variants[jobs[k].v]
		sp := v.specs[jobs[k].m]
		out, err := ladderSession(v.Content, sp.build(), v.Allowed)
		if err != nil {
			return LadderCell{}, fmt.Errorf("experiments: ladder %s/%s: %w", v.Name, sp.name, err)
		}
		return LadderCell{
			Variant:     v.Name,
			Aligned:     v.Content.Aligned(),
			VideoChunks: v.Content.NumChunksOf(media.Video),
			AudioChunks: v.Content.NumChunksOf(media.Audio),
			Outcome:     out,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return cells, plan, nil
}

// ladderSession streams one preparation over the family's constrained link
// with the per-request RTT applied.
func ladderSession(c *media.Content, model abr.Algorithm, allowed []media.Combo) (Outcome, error) {
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(LadderKbps)))
	link.RTT = LadderRTT
	res, err := player.Run(link, player.Config{Content: c, Model: model})
	if err != nil {
		return Outcome{}, err
	}
	if !res.Ended {
		return Outcome{}, fmt.Errorf("%s: session did not finish", model.Name())
	}
	return Outcome{
		Model:   model.Name(),
		Result:  res,
		Metrics: qoe.Compute(res, c, allowed, qoe.DefaultWeights()),
	}, nil
}

// PrintLadder renders the cross-product table plus the plan summary.
func PrintLadder(w io.Writer, cells []LadderCell, plan *shaping.Plan) {
	fmt.Fprintf(w, "Offline chunking x online ABR (%d Kbps, %v request RTT, shaping seed %d):\n",
		LadderKbps, LadderRTT, plan.Seed)
	fmt.Fprintf(w, "  plan: %d scenes; video %d chunks (cost %.2f), audio %d chunks (cost %.2f); ladder score %.3f\n",
		len(plan.Scenes), len(plan.VideoChunks), plan.VideoCost,
		len(plan.AudioChunks), plan.AudioCost, plan.LadderScore)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  Preparation\tAligned\tChunks (V+A)\tModel\tVideo\tStartup\tStalls\tRebuffer\tQoE")
	for _, cell := range cells {
		m := cell.Outcome.Metrics
		fmt.Fprintf(tw, "  %s\t%v\t%d+%d\t%s\t%.0fK\t%.2fs\t%d\t%.1fs\t%.2f\n",
			cell.Variant, cell.Aligned, cell.VideoChunks, cell.AudioChunks,
			cell.Outcome.Model, m.AvgVideoBitrate.Kbps(), m.StartupDelay.Seconds(),
			m.StallCount, m.RebufferTime.Seconds(), m.Score)
	}
	tw.Flush()
}
