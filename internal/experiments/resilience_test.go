package experiments

import (
	"bytes"
	"testing"

	"demuxabr/internal/faults"
)

// TestPolicyResilienceAcceptance is the PR's headline claim: under 1%
// per-segment faults on the varying-600 trace, the best-practice player
// with the robustness policy completes with zero aborts, while the same
// player without it dies.
func TestPolicyResilienceAcceptance(t *testing.T) {
	on, off, err := PolicyResilience()
	if err != nil {
		t.Fatal(err)
	}
	if !on.Result.Ended || on.Result.Aborted {
		t.Fatalf("policy-on session did not complete: Ended=%v Aborted=%v (%s)",
			on.Result.Ended, on.Result.Aborted, on.Result.AbortReason)
	}
	if len(on.Result.Faults) == 0 {
		t.Fatal("policy-on session saw no faults — the comparison is vacuous; pick a different seed")
	}
	if !off.Result.Aborted {
		t.Fatalf("policy-off session survived the same fault sequence: Ended=%v faults=%d",
			off.Result.Ended, len(off.Result.Faults))
	}
}

func resilienceText(t *testing.T, parallel int) string {
	t.Helper()
	points, err := ResilienceSweepParallel([]float64{0, 0.02}, parallel)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintResilience(&buf, points)
	return buf.String()
}

func TestResilienceSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full player sweep")
	}
	first := resilienceText(t, 1)
	if again := resilienceText(t, 1); again != first {
		t.Fatalf("serial resilience sweep not deterministic:\n%s\nvs\n%s", again, first)
	}
}

func TestResilienceSweepParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full player sweep")
	}
	serial := resilienceText(t, 1)
	if par := resilienceText(t, 4); par != serial {
		t.Fatalf("parallel resilience sweep diverged from serial:\n%s\nvs\n%s", par, serial)
	}
}

func TestResilienceSweepZeroRateCompletes(t *testing.T) {
	points, err := ResilienceSweepParallel([]float64{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if !p.Outcome.Result.Ended || p.Outcome.Result.Aborted {
			t.Errorf("%s at rate 0 did not finish: Ended=%v Aborted=%v",
				p.Outcome.Model, p.Outcome.Result.Ended, p.Outcome.Result.Aborted)
		}
		// With no injected faults the only failures are the policy's own
		// request timeouts cancelling transfers stuck in trace troughs.
		for _, f := range p.Outcome.Result.Faults {
			if f.Kind != faults.Timeout {
				t.Errorf("%s at rate 0 recorded a %v fault", p.Outcome.Model, f.Kind)
			}
		}
	}
}
