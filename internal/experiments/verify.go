package experiments

import (
	"fmt"
	"io"
	"time"

	"demuxabr/internal/media"
)

// Check is one verifiable paper expectation.
type Check struct {
	ID     string
	Claim  string
	Pass   bool
	Detail string
}

// VerifyAll evaluates every figure's qualitative claim against a fresh run
// and returns the checklist — the machine-checkable core of EXPERIMENTS.md.
func VerifyAll() ([]Check, error) {
	var checks []Check
	add := func(id, claim string, pass bool, detail string, args ...any) {
		checks = append(checks, Check{ID: id, Claim: claim, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	// Tables.
	c := media.DramaShow()
	all, sub := media.HAll(c), media.HSub(c)
	add("table2", "18 combinations, peak 253..4838 Kbps",
		len(all) == 18 && all[0].PeakBitrate() == media.Kbps(253) && all[17].PeakBitrate() == media.Kbps(4838),
		"n=%d first=%v last=%v", len(all), all[0].PeakBitrate(), all[17].PeakBitrate())
	add("table3", "curated subset V1+A1..V6+A3",
		len(sub) == 6 && sub[0].String() == "V1+A1" && sub[5].String() == "V6+A3",
		"%v", sub)

	// Fig 2.
	f2a, err := Fig2a()
	if err != nil {
		return nil, err
	}
	add("fig2a", "ExoPlayer DASH selects V3+B2; V3+B3 feasible but excluded",
		f2a.Dominant.String() == "V3+B2" && f2a.BetterFits && !f2a.BetterPredetermined,
		"dominant=%s fits=%v predetermined=%v", f2a.Dominant, f2a.BetterFits, f2a.BetterPredetermined)
	f2b, err := Fig2b()
	if err != nil {
		return nil, err
	}
	add("fig2b", "ExoPlayer DASH selects V2+C2; V3+C1 feasible but excluded",
		f2b.Dominant.String() == "V2+C2" && f2b.BetterFits && !f2b.BetterPredetermined,
		"dominant=%s fits=%v predetermined=%v", f2b.Dominant, f2b.BetterFits, f2b.BetterPredetermined)

	// Fig 3.
	f3, err := Fig3()
	if err != nil {
		return nil, err
	}
	add("fig3", "ExoPlayer HLS pins A3, stalls repeatedly, leaves the manifest",
		f3.FixedAudio == "A3" && f3.AudioTrackChanges == 0 &&
			f3.Outcome.Metrics.StallCount >= 2 && f3.OffManifestChunks > 0,
		"audio=%s switches=%d stalls=%d rebuffer=%.1fs off-manifest=%d",
		f3.FixedAudio, f3.AudioTrackChanges, f3.Outcome.Metrics.StallCount,
		f3.Outcome.Metrics.RebufferTime.Seconds(), f3.OffManifestChunks)

	// Fig 4.
	f4a, err := Fig4a()
	if err != nil {
		return nil, err
	}
	add("fig4a", "Shaka estimate stuck at 500 Kbps default; V2+A2 throughout",
		!f4a.AnyValidSample && f4a.EstimateEnd == media.Kbps(500) && f4a.Dominant.String() == "V2+A2",
		"samples=%v estimate=%v dominant=%s", f4a.AnyValidSample, f4a.EstimateEnd, f4a.Dominant)
	f4b, err := Fig4b()
	if err != nil {
		return nil, err
	}
	add("fig4b", "Shaka under- then over-estimates; V2+A2 -> V3+A3; heavy rebuffering",
		f4b.AnyValidSample && f4b.EstimateEnd > media.Kbps(1000) &&
			f4b.Dominant.String() == "V3+A3" && f4b.Outcome.Metrics.RebufferTime > 15*time.Second,
		"estimate=%v dominant=%s rebuffer=%.1fs",
		f4b.EstimateEnd, f4b.Dominant, f4b.Outcome.Metrics.RebufferTime.Seconds())

	// Fig 5.
	f5, err := Fig5()
	if err != nil {
		return nil, err
	}
	add("fig5", "dash.js fluctuates across combos incl. undesirable; buffers unbalanced",
		len(f5.Combos) >= 3 && len(f5.UndesirablePairings) > 0 && f5.MaxImbalance >= 5*time.Second,
		"combos=%d undesirable=%v imbalance=%.1fs", len(f5.Combos), f5.UndesirablePairings, f5.MaxImbalance.Seconds())

	// §4 validations.
	rep, err := Fig3Repaired()
	if err != nil {
		return nil, err
	}
	add("repair", "§4.1 media-playlist repair restores audio adaptation and stays on-manifest",
		rep.Repaired.Metrics.OffManifest == 0 &&
			rep.Repaired.Metrics.RebufferTime < rep.Broken.Metrics.RebufferTime,
		"off-manifest=%d rebuffer %.1fs -> %.1fs", rep.Repaired.Metrics.OffManifest,
		rep.Broken.Metrics.RebufferTime.Seconds(), rep.Repaired.Metrics.RebufferTime.Seconds())
	sp, err := SplitPath()
	if err != nil {
		return nil, err
	}
	add("splitpath", "§4.1 per-path budgets beat an aggregate budget on split paths",
		sp.PathAware.Metrics.Score > sp.Shared.Metrics.Score &&
			sp.PathAware.Metrics.AvgVideoBitrate > sp.Shared.Metrics.AvgVideoBitrate,
		"video %0.fK vs %0.fK, qoe %.2f vs %.2f",
		sp.PathAware.Metrics.AvgVideoBitrate.Kbps(), sp.Shared.Metrics.AvgVideoBitrate.Kbps(),
		sp.PathAware.Metrics.Score, sp.Shared.Metrics.Score)

	return checks, nil
}

// PrintChecks renders the checklist; it returns the failure count.
func PrintChecks(w io.Writer, checks []Check) int {
	failures := 0
	for _, ch := range checks {
		status := "PASS"
		if !ch.Pass {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "%s %-10s %s\n            measured: %s\n", status, ch.ID, ch.Claim, ch.Detail)
	}
	fmt.Fprintf(w, "%d/%d checks passed\n", len(checks)-failures, len(checks))
	return failures
}
